#include "src/qkd/rle.hpp"

#include <gtest/gtest.h>

#include "tests/testing/seeded_rng.hpp"

#include "src/common/rng.hpp"

namespace qkd::proto {
namespace {

TEST(Rle, EmptyBitmap) {
  const qkd::BitVector empty;
  EXPECT_EQ(rle_decode(rle_encode(empty)), empty);
}

TEST(Rle, RoundTripsPatterns) {
  for (const char* pattern :
       {"0", "1", "01", "10", "0000000", "1111111", "010101",
        "0000000100000000000000110000"}) {
    const auto bits = qkd::BitVector::from_string(pattern);
    EXPECT_EQ(rle_decode(rle_encode(bits)), bits) << pattern;
  }
}

TEST(Rle, RoundTripsRandomDense) {
  QKD_SEEDED_RNG(rng, 1);
  for (std::size_t n : {1u, 63u, 64u, 65u, 1000u}) {
    const auto bits = rng.next_bits(n);
    EXPECT_EQ(rle_decode(rle_encode(bits)), bits) << n;
  }
}

TEST(Rle, RoundTripsSparseDetectionBitmap) {
  // The actual use case: ~0.3 % detection probability over a 1 M slot frame.
  QKD_SEEDED_RNG(rng, 2);
  qkd::BitVector bits(100000);
  for (std::size_t i = 0; i < bits.size(); ++i)
    if (rng.next_bool(0.003)) bits.set(i, true);
  EXPECT_EQ(rle_decode(rle_encode(bits)), bits);
}

TEST(Rle, CompressesSparseBitmapsHard) {
  // Appendix: runs of "no detection" must take very little space.
  QKD_SEEDED_RNG(rng, 3);
  qkd::BitVector bits(1 << 20);
  std::size_t detections = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (rng.next_bool(0.003)) {
      bits.set(i, true);
      ++detections;
    }
  }
  const Bytes encoded = rle_encode(bits);
  const std::size_t raw = raw_bitmap_bytes(bits.size());
  // ~2 varints per detection vs 128 KiB raw: at least 10x smaller here.
  EXPECT_LT(encoded.size(), raw / 10);
  EXPECT_LT(encoded.size(), detections * 5 + 16);
}

TEST(Rle, DenseBitmapDoesNotExplode) {
  // Worst case (alternating bits) must stay within ~2 bytes/transition.
  qkd::BitVector bits(1000);
  for (std::size_t i = 0; i < bits.size(); i += 2) bits.set(i, true);
  EXPECT_LT(rle_encode(bits).size(), 2 * bits.size() + 16);
}

TEST(Rle, RejectsMalformedInput) {
  EXPECT_THROW(rle_decode(Bytes{}), std::invalid_argument);
  // Header says 8 bits but no runs follow.
  Bytes truncated;
  put_varint(truncated, 8);
  EXPECT_THROW(rle_decode(truncated), std::invalid_argument);
  // Run overflowing the declared size.
  Bytes overflow;
  put_varint(overflow, 4);
  put_varint(overflow, 100);
  EXPECT_THROW(rle_decode(overflow), std::invalid_argument);
  // Trailing junk after a complete bitmap.
  Bytes trailing = rle_encode(qkd::BitVector::from_string("0101"));
  trailing.push_back(0x00);
  EXPECT_THROW(rle_decode(trailing), std::invalid_argument);
}

}  // namespace
}  // namespace qkd::proto
