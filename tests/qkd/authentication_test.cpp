#include "src/qkd/authentication.hpp"

#include <gtest/gtest.h>

#include "tests/testing/seeded_rng.hpp"

#include "src/common/rng.hpp"

namespace qkd::proto {
namespace {

struct Pair {
  AuthenticationService alice;
  AuthenticationService bob;
};

Pair make_pair(std::size_t extra_pad_bits = 8192,
               AuthenticationService::Config config = {}) {
  ::qkd::testing::SeededRng rng(42);  // trace-free: helper scope ends before asserts
  const auto secret = rng.next_bits(
      AuthenticationService::required_secret_bits(config) + extra_pad_bits);
  return Pair{AuthenticationService(config, secret, true),
              AuthenticationService(config, secret, false)};
}

TEST(Authentication, ProtectVerifyRoundTrip) {
  Pair p = make_pair();
  const Bytes msg = {'s', 'i', 'f', 't', '!'};
  const auto framed = p.alice.protect(msg);
  ASSERT_TRUE(framed.has_value());
  const auto verified = p.bob.verify(*framed);
  ASSERT_TRUE(verified.has_value());
  EXPECT_EQ(*verified, msg);
}

TEST(Authentication, BothDirectionsWork) {
  Pair p = make_pair();
  const Bytes a2b = {1}, b2a = {2};
  const auto f1 = p.alice.protect(a2b);
  const auto f2 = p.bob.protect(b2a);
  ASSERT_TRUE(f1 && f2);
  EXPECT_EQ(p.bob.verify(*f1), a2b);
  EXPECT_EQ(p.alice.verify(*f2), b2a);
}

TEST(Authentication, TamperedPayloadRejected) {
  Pair p = make_pair();
  auto framed = p.alice.protect(Bytes{9, 9, 9});
  ASSERT_TRUE(framed.has_value());
  (*framed)[10] ^= 0x01;  // flip a payload bit
  EXPECT_FALSE(p.bob.verify(*framed).has_value());
  EXPECT_EQ(p.bob.stats().rejected, 1u);
}

TEST(Authentication, TamperedTagRejected) {
  Pair p = make_pair();
  auto framed = p.alice.protect(Bytes{1, 2, 3});
  ASSERT_TRUE(framed.has_value());
  framed->back() ^= 0x80;
  EXPECT_FALSE(p.bob.verify(*framed).has_value());
}

TEST(Authentication, ReplayRejected) {
  Pair p = make_pair();
  const auto framed = p.alice.protect(Bytes{5});
  ASSERT_TRUE(framed.has_value());
  ASSERT_TRUE(p.bob.verify(*framed).has_value());
  EXPECT_FALSE(p.bob.verify(*framed).has_value());  // replayed frame
}

TEST(Authentication, ReflectionRejected) {
  // A frame Alice sent must not verify at Alice (direction separation).
  Pair p = make_pair();
  const auto framed = p.alice.protect(Bytes{7});
  ASSERT_TRUE(framed.has_value());
  EXPECT_FALSE(p.alice.verify(*framed).has_value());
}

TEST(Authentication, TruncatedFrameRejected) {
  Pair p = make_pair();
  EXPECT_FALSE(p.bob.verify(Bytes{1, 2, 3}).has_value());
}

TEST(Authentication, ExhaustionStallsThenReplenishmentRestores) {
  AuthenticationService::Config config;
  config.tag_bits = 64;
  // required_secret_bits already includes one tag of pad per direction; the
  // extra 4*64 split across two directions adds two more: three tags total.
  Pair p = make_pair(4 * 64, config);
  const Bytes msg = {1};
  // Each round trip costs one send-pad tag at Alice and one recv-pad tag at
  // Bob; three round trips exhaust the initial pads.
  for (int i = 0; i < 3; ++i) {
    const auto framed = p.alice.protect(msg);
    ASSERT_TRUE(framed.has_value()) << i;
    ASSERT_TRUE(p.bob.verify(*framed).has_value()) << i;
  }
  EXPECT_FALSE(p.alice.protect(msg).has_value());
  EXPECT_EQ(p.alice.stats().stalls, 1u);

  // Replenish both sides with the same distilled bits; traffic resumes and
  // the pads pair correctly across the direction split.
  QKD_SEEDED_RNG(rng, 7);
  const auto fresh = rng.next_bits(512);
  p.alice.replenish(fresh);
  p.bob.replenish(fresh);
  const auto framed = p.alice.protect(msg);
  ASSERT_TRUE(framed.has_value());
  EXPECT_TRUE(p.bob.verify(*framed).has_value());
  const auto reverse = p.bob.protect(msg);
  ASSERT_TRUE(reverse.has_value());
  EXPECT_TRUE(p.alice.verify(*reverse).has_value());
}

TEST(Authentication, NeedsReplenishmentSignal) {
  AuthenticationService::Config config;
  config.low_water_bits = 1 << 20;  // absurdly high: always below water
  Pair p = make_pair(8192, config);
  EXPECT_TRUE(p.alice.needs_replenishment());
}

TEST(Authentication, PadAccountingAddsUp) {
  Pair p = make_pair();
  const std::size_t before = p.alice.pad_bits_available();
  const auto framed = p.alice.protect(Bytes{1, 2});
  ASSERT_TRUE(framed.has_value());
  EXPECT_EQ(p.alice.pad_bits_available(), before - 64);
  EXPECT_EQ(p.alice.pad_bits_consumed(), 64u);
}

TEST(Authentication, RejectsTinySecret) {
  AuthenticationService::Config config;
  QKD_SEEDED_RNG(rng, 1);
  EXPECT_THROW(
      AuthenticationService(config, rng.next_bits(100), true),
      std::invalid_argument);
}

TEST(Authentication, SequencedStreamSurvivesManyMessages) {
  Pair p = make_pair(1 << 16);
  for (int i = 0; i < 100; ++i) {
    const Bytes msg(static_cast<std::size_t>(i % 37 + 1),
                    static_cast<std::uint8_t>(i));
    const auto framed = p.alice.protect(msg);
    ASSERT_TRUE(framed.has_value()) << i;
    const auto verified = p.bob.verify(*framed);
    ASSERT_TRUE(verified.has_value()) << i;
    EXPECT_EQ(*verified, msg);
  }
  EXPECT_EQ(p.bob.stats().verified, 100u);
  EXPECT_EQ(p.bob.stats().rejected, 0u);
}

}  // namespace
}  // namespace qkd::proto
