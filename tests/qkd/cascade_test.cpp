// Error-correction strategy tests: the BBN LFSR-subset Cascade variant, the
// classic Brassard-Salvail Cascade baseline, and the naive parity baseline.
#include <gtest/gtest.h>

#include "tests/testing/seeded_rng.hpp"

#include <tuple>

#include "src/common/rng.hpp"
#include "src/qkd/cascade_bbn.hpp"
#include "src/qkd/cascade_classic.hpp"
#include "src/qkd/parity_ec.hpp"

namespace qkd::proto {
namespace {

struct Corrupted {
  qkd::BitVector alice;
  qkd::BitVector bob;
  std::size_t errors;
};

Corrupted make_corrupted(std::size_t n, double error_rate, qkd::Rng& rng) {
  Corrupted c;
  c.alice = rng.next_bits(n);
  c.bob = c.alice;
  c.errors = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.next_bool(error_rate)) {
      c.bob.flip(i);
      ++c.errors;
    }
  }
  return c;
}

// ---------------------------------------------------------------- BBN -----

using CascadeSweepParam = std::tuple<std::size_t /*n*/, double /*error rate*/>;

class BbnCascadeSweep : public ::testing::TestWithParam<CascadeSweepParam> {};

TEST_P(BbnCascadeSweep, CorrectsAllErrors) {
  const auto [n, rate] = GetParam();
  QKD_SEEDED_RNG(rng, 1000 + n);
  Corrupted c = make_corrupted(n, rate, rng);
  LocalParityOracle oracle(c.alice);
  const EcStats stats = bbn_cascade_correct(c.bob, oracle);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(c.bob, c.alice) << "n=" << n << " rate=" << rate;
  EXPECT_EQ(stats.parity_queries, oracle.disclosed());
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRates, BbnCascadeSweep,
    ::testing::Combine(::testing::Values(64, 500, 1000, 4000),
                       ::testing::Values(0.0, 0.01, 0.03, 0.07, 0.11)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_rate" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 1000));
    });

TEST(BbnCascade, NoErrorsDisclosesOnlySubsetParities) {
  // Adaptivity claim (Sec. 5): "it will not disclose too many bits if the
  // number of errors is low". With zero errors the cost is exactly one
  // clean round of subset parities.
  QKD_SEEDED_RNG(rng, 7);
  Corrupted c = make_corrupted(2000, 0.0, rng);
  LocalParityOracle oracle(c.alice);
  const BbnCascadeConfig config;
  const EcStats stats = bbn_cascade_correct(c.bob, oracle, config);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(stats.parity_queries, config.subsets_per_round);
  EXPECT_EQ(stats.corrections, 0u);
}

TEST(BbnCascade, DisclosureGrowsWithErrorRate) {
  QKD_SEEDED_RNG(rng, 11);
  std::size_t prev = 0;
  for (double rate : {0.01, 0.05, 0.10}) {
    Corrupted c = make_corrupted(4000, rate, rng);
    LocalParityOracle oracle(c.alice);
    const EcStats stats = bbn_cascade_correct(c.bob, oracle);
    EXPECT_TRUE(stats.converged);
    EXPECT_GT(stats.parity_queries, prev);
    prev = stats.parity_queries;
  }
}

TEST(BbnCascade, HandlesBurstWellAboveHistoricalAverage) {
  // "it will accurately detect and correct a large number of errors (up to
  // some limit) even if that number is well above the historical average."
  QKD_SEEDED_RNG(rng, 13);
  Corrupted c;
  c.alice = rng.next_bits(1000);
  c.bob = c.alice;
  for (std::size_t i = 100; i < 150; ++i) c.bob.flip(i);  // dense burst
  LocalParityOracle oracle(c.alice);
  const EcStats stats = bbn_cascade_correct(c.bob, oracle);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(c.bob, c.alice);
  EXPECT_EQ(stats.corrections, 50u);
}

TEST(BbnCascade, EmptyInputConverges) {
  qkd::BitVector empty;
  LocalParityOracle oracle(empty);
  EXPECT_TRUE(bbn_cascade_correct(empty, oracle).converged);
}

TEST(BbnCascade, SingleBitString) {
  qkd::BitVector alice{1};
  qkd::BitVector bob{0};
  LocalParityOracle oracle(alice);
  const EcStats stats = bbn_cascade_correct(bob, oracle);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(bob, alice);
  EXPECT_EQ(stats.corrections, 1u);
}

// ------------------------------------------------------------ classic -----

class ClassicCascadeSweep : public ::testing::TestWithParam<CascadeSweepParam> {
};

TEST_P(ClassicCascadeSweep, CorrectsAllErrors) {
  const auto [n, rate] = GetParam();
  QKD_SEEDED_RNG(rng, 2000 + n);
  Corrupted c = make_corrupted(n, rate, rng);
  LocalParityOracle oracle(c.alice);
  const EcStats stats =
      classic_cascade_correct(c.bob, oracle, std::max(rate, 0.01));
  EXPECT_TRUE(stats.converged);
  // Classic cascade with 4 passes corrects essentially everything at these
  // rates; require exact equality (the standard benchmark result).
  EXPECT_EQ(c.bob, c.alice) << "n=" << n << " rate=" << rate;
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndRates, ClassicCascadeSweep,
    ::testing::Combine(::testing::Values(64, 500, 1000, 4000),
                       ::testing::Values(0.0, 0.01, 0.03, 0.07)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_rate" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 1000));
    });

TEST(ClassicCascade, BlockSizeAdaptsToQberEstimate) {
  // A lower estimated QBER means larger first-pass blocks and fewer parity
  // disclosures when the string is in fact clean.
  QKD_SEEDED_RNG(rng, 17);
  Corrupted clean = make_corrupted(4000, 0.0, rng);
  LocalParityOracle low_oracle(clean.alice);
  qkd::BitVector bob_low = clean.bob;
  const EcStats low = classic_cascade_correct(bob_low, low_oracle, 0.01);

  LocalParityOracle high_oracle(clean.alice);
  qkd::BitVector bob_high = clean.bob;
  const EcStats high = classic_cascade_correct(bob_high, high_oracle, 0.10);

  EXPECT_LT(low.parity_queries, high.parity_queries);
}

TEST(ClassicCascade, EmptyInputConverges) {
  qkd::BitVector empty;
  LocalParityOracle oracle(empty);
  EXPECT_TRUE(classic_cascade_correct(empty, oracle, 0.03).converged);
}

// -------------------------------------------------------------- naive -----

TEST(NaiveParity, FixesIsolatedSingleErrors) {
  QKD_SEEDED_RNG(rng, 19);
  qkd::BitVector alice = rng.next_bits(1024);
  qkd::BitVector bob = alice;
  bob.flip(100);
  LocalParityOracle oracle(alice);
  const EcStats stats = naive_parity_correct(bob, oracle);
  EXPECT_EQ(bob, alice);
  EXPECT_EQ(stats.corrections, 1u);
}

TEST(NaiveParity, LeavesResidualErrorsAtHighRates) {
  // One pass of block parities misses even-error blocks; at 7 % QBER over
  // 4k bits some residuals are essentially certain. This is the failure
  // mode that motivates Cascade (bench E5 quantifies it).
  QKD_SEEDED_RNG(rng, 23);
  Corrupted c = make_corrupted(4096, 0.07, rng);
  LocalParityOracle oracle(c.alice);
  const EcStats stats = naive_parity_correct(c.bob, oracle);
  EXPECT_FALSE(stats.converged);  // protocol cannot certify equality
  EXPECT_GT(c.alice.hamming_distance(c.bob), 0u);
  EXPECT_LT(c.alice.hamming_distance(c.bob), 290u);  // but most got fixed
}

TEST(NaiveParity, DisclosesRoughlyOneBitPerBlock) {
  QKD_SEEDED_RNG(rng, 29);
  Corrupted c = make_corrupted(4096, 0.0, rng);
  LocalParityOracle oracle(c.alice);
  NaiveParityConfig config;
  config.block_size = 64;
  const EcStats stats = naive_parity_correct(c.bob, oracle, config);
  EXPECT_EQ(stats.parity_queries, 4096u / 64u);
}

// ------------------------------------------------- comparative checks -----

TEST(ErrorCorrectionComparison, BbnAndClassicBothConvergeNaiveDoesNot) {
  const double rate = 0.06;
  QKD_SEEDED_RNG(rng, 31);
  Corrupted base = make_corrupted(4096, rate, rng);

  qkd::BitVector bbn_bob = base.bob;
  LocalParityOracle bbn_oracle(base.alice);
  const EcStats bbn = bbn_cascade_correct(bbn_bob, bbn_oracle);

  qkd::BitVector classic_bob = base.bob;
  LocalParityOracle classic_oracle(base.alice);
  const EcStats classic =
      classic_cascade_correct(classic_bob, classic_oracle, rate);

  qkd::BitVector naive_bob = base.bob;
  LocalParityOracle naive_oracle(base.alice);
  naive_parity_correct(naive_bob, naive_oracle);

  EXPECT_EQ(bbn_bob, base.alice);
  EXPECT_EQ(classic_bob, base.alice);
  EXPECT_TRUE(bbn.converged);
  EXPECT_TRUE(classic.converged);
  EXPECT_GT(naive_bob.hamming_distance(base.alice), 0u);
}

}  // namespace
}  // namespace qkd::proto
