// Stage-pipeline decomposition tests: the ordered PipelineStage run behind
// run_batch(), per-stage accounting, determinism, and stage swapping.
#include "src/qkd/pipeline.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace qkd::proto {
namespace {

QkdLinkConfig fast_config() {
  QkdLinkConfig config;
  config.frame_slots = 1 << 20;
  return config;
}

TEST(Pipeline, DefaultOrderIsTheFig9Stack) {
  QkdLinkSession session(fast_config(), 1);
  const auto& stages = session.pipeline();
  ASSERT_EQ(stages.size(), 7u);
  const char* expected[] = {"sifting",
                            "sampling",
                            "error-correction",
                            "verify",
                            "entropy",
                            "privacy-amplification",
                            "auth-replenish"};
  for (std::size_t i = 0; i < stages.size(); ++i)
    EXPECT_STREQ(stages[i]->name(), expected[i]) << i;
}

TEST(Pipeline, StageStatsCoverTheWholeBatch) {
  QkdLinkSession session(fast_config(), 2);
  const BatchResult batch = session.run_batch();
  ASSERT_TRUE(batch.accepted) << abort_reason_name(batch.reason);
  ASSERT_EQ(batch.stages.size(), 7u);

  // Every control byte of the batch is attributed to exactly one stage.
  std::size_t stage_bytes = 0, stage_messages = 0;
  for (const StageStats& stage : batch.stages) {
    EXPECT_GE(stage.wall_s, 0.0) << stage.name;
    stage_bytes += stage.control_bytes;
    stage_messages += stage.control_messages;
  }
  EXPECT_EQ(stage_bytes, batch.control_bytes);
  EXPECT_EQ(stage_messages, batch.control_messages);

  // The wire-heavy stages are the ones that actually shipped something.
  EXPECT_GT(batch.stages[0].control_messages, 0u);  // sifting: 2 messages
  EXPECT_GT(batch.stages[2].control_bytes, 0u);     // EC parity traffic
  EXPECT_EQ(batch.stages[4].control_bytes, 0u);     // entropy: local math only
}

TEST(Pipeline, AbortRecordsOnlyExecutedStages) {
  // Full interception (~31 % QBER) trips the sampled alarm inside
  // SamplingStage: the pipeline must stop there, leaving exactly the
  // stages that ran. The gate is set at 0.15 so the small-sample estimate
  // cannot wander above it.
  QkdLinkConfig config = fast_config();
  config.early_abort_qber = 0.15;
  QkdLinkSession session(config, 5);
  qkd::optics::InterceptResendAttack eve(1.0);
  const BatchResult batch = session.run_batch(&eve);
  ASSERT_FALSE(batch.accepted);
  EXPECT_EQ(batch.reason, AbortReason::kQberTooHigh);
  ASSERT_EQ(batch.stages.size(), 2u);
  EXPECT_EQ(batch.stages.back().name, "sampling");
}

TEST(Pipeline, SameSeedSameKeyStreamAcrossSessions) {
  // The pipeline decomposition must not perturb determinism: identical
  // config and seed give bit-identical key streams batch by batch.
  QkdLinkSession left(fast_config(), 11);
  QkdLinkSession right(fast_config(), 11);
  for (int i = 0; i < 3; ++i) {
    const BatchResult a = left.run_batch();
    const BatchResult b = right.run_batch();
    EXPECT_EQ(a.reason, b.reason);
    EXPECT_TRUE(a.key == b.key) << "batch " << i;
  }
  EXPECT_EQ(left.totals().distilled_bits, right.totals().distilled_bits);
}

TEST(Pipeline, SamplingDrawsExactlyTheConfiguredFraction) {
  // A 60 % sample is the degenerate case for the old rejection loop (it
  // re-drew already-chosen positions more often than not); the
  // Fisher-Yates draw is O(n) and hits the target exactly.
  QkdLinkConfig config = fast_config();
  config.sample_fraction = 0.6;
  QkdLinkSession session(config, 3);
  const BatchResult batch = session.run_batch();
  ASSERT_GT(batch.sifted_bits, 0u);
  EXPECT_EQ(batch.sampled_bits,
            static_cast<std::size_t>(0.6 * static_cast<double>(
                                               batch.sifted_bits)));
}

/// A do-nothing observer stage, to prove the pipeline is composable.
class TapStage final : public PipelineStage {
 public:
  explicit TapStage(int& counter) : counter_(counter) {}
  const char* name() const override { return "tap"; }
  AbortReason run(BatchContext& ctx) override {
    ++counter_;
    EXPECT_GT(ctx.frame.bob.detected.size(), 0u);
    return AbortReason::kNone;
  }

 private:
  int& counter_;
};

TEST(Pipeline, StagesCanBeSwappedAndInstrumented) {
  QkdLinkSession session(fast_config(), 4);
  int taps = 0;
  auto stages = default_pipeline();
  stages.insert(stages.begin(), std::make_unique<TapStage>(taps));
  session.set_pipeline(std::move(stages));

  const BatchResult batch = session.run_batch();
  ASSERT_TRUE(batch.accepted) << abort_reason_name(batch.reason);
  EXPECT_EQ(taps, 1);
  ASSERT_EQ(batch.stages.size(), 8u);
  EXPECT_EQ(batch.stages.front().name, "tap");
  EXPECT_EQ(batch.stages.front().control_bytes, 0u);
}

}  // namespace
}  // namespace qkd::proto
