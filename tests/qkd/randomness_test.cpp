#include "src/qkd/randomness.hpp"

#include <gtest/gtest.h>

#include "tests/testing/seeded_rng.hpp"

#include "src/common/rng.hpp"
#include "src/crypto/lfsr.hpp"

namespace qkd::proto {
namespace {

TEST(Randomness, FairBitsPass) {
  QKD_SEEDED_RNG(rng, 1);
  for (std::size_t n : {64u, 1000u, 10000u, 100000u}) {
    const RandomnessReport report = test_randomness(rng.next_bits(n));
    EXPECT_TRUE(report.passed) << n;
    EXPECT_DOUBLE_EQ(report.non_randomness_bits, 0.0) << n;
  }
}

TEST(Randomness, TinyInputsHaveNoPower) {
  const RandomnessReport report =
      test_randomness(qkd::BitVector::from_string("1111"));
  EXPECT_TRUE(report.passed);
  EXPECT_DOUBLE_EQ(report.non_randomness_bits, 0.0);
}

TEST(Randomness, DetectorBiasIsCaught) {
  // The paper's example: "non-randomness in the raw QKD bits (detector
  // bias, for example)". 70/30 bias over 10k bits is a ~40-sigma monobit
  // failure; the shortening approximates the min-entropy shortfall.
  QKD_SEEDED_RNG(rng, 2);
  qkd::BitVector biased(10000);
  for (std::size_t i = 0; i < biased.size(); ++i)
    biased.set(i, rng.next_bool(0.7));
  const RandomnessReport report = test_randomness(biased);
  EXPECT_FALSE(report.passed);
  EXPECT_GT(report.monobit_sigma, 10.0);
  // Monobit shortfall alone is n*(1 - h2(0.7)) ~ 1187 bits; the bias also
  // trips the poker test (biased nibbles are non-uniform), adding its flat
  // n/8 = 1250 penalty.
  EXPECT_GT(report.non_randomness_bits, 1100.0);
  EXPECT_LT(report.non_randomness_bits, 3000.0);
}

TEST(Randomness, StuckDetectorIsCaught) {
  qkd::BitVector stuck(5000);  // all zeros
  const RandomnessReport report = test_randomness(stuck);
  EXPECT_FALSE(report.passed);
  EXPECT_EQ(report.longest_run, 5000u);
  // Everything must be thrown away.
  EXPECT_DOUBLE_EQ(report.non_randomness_bits, 5000.0);
}

TEST(Randomness, PeriodicPatternFailsPoker) {
  // Alternating 0101... passes monobit exactly but is grossly structured.
  qkd::BitVector alternating(8192);
  for (std::size_t i = 0; i < alternating.size(); i += 2)
    alternating.set(i, true);
  const RandomnessReport report = test_randomness(alternating);
  EXPECT_LT(report.monobit_sigma, 1.0);
  EXPECT_FALSE(report.passed);
  EXPECT_GT(report.poker_chi2, 100.0);
  EXPECT_GT(report.non_randomness_bits, 0.0);
}

TEST(Randomness, MildBiasPassesWithoutCharge) {
  // 50.5% ones over 10k bits is within 4.5 sigma: no false alarm.
  QKD_SEEDED_RNG(rng, 3);
  qkd::BitVector mild(10000);
  for (std::size_t i = 0; i < mild.size(); ++i)
    mild.set(i, rng.next_bool(0.505));
  const RandomnessReport report = test_randomness(mild);
  EXPECT_TRUE(report.passed);
}

TEST(Randomness, LfsrOutputPassesTheBasicBattery) {
  // A maximal LFSR stream is not cryptographically random but sails through
  // FIPS-style tests — a documented limitation of this battery.
  qkd::crypto::Lfsr32 lfsr(0xace1);
  const RandomnessReport report = test_randomness(lfsr.next_bits(65536));
  EXPECT_TRUE(report.passed);
}

}  // namespace
}  // namespace qkd::proto
