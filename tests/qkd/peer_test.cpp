// Single-sided peers over a real byte-moving transport. The strongest
// claim under test: the two-process dialogue is the SAME protocol as the
// in-process pipeline — same DRBG draws, same frames, same bytes — so for
// one (config, seed) the peer-distilled key must be bit-identical to the
// QkdLinkSession key. Tier-1 runs the peers on two threads over a
// localhost TCP socket; the fork-per-endpoint variant lives in
// tests/integration/.
#include "src/qkd/peer.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "src/qkd/engine.hpp"
#include "src/wire/transport.hpp"

namespace qkd::proto {
namespace {

constexpr std::uint64_t kSeed = 20030825;

// The default Qframe (2^20 slots) distills ~1500 sifted bits and accepts
// reliably; smaller frames starve the entropy margin and flake on verify.
QkdLinkConfig small_config() { return QkdLinkConfig{}; }

struct PeerRun {
  PeerOutcome alice;
  PeerOutcome bob;
};

/// One batch over localhost TCP, Alice accepting, Bob connecting.
PeerRun run_peers_once(const QkdLinkConfig& config, std::uint64_t seed) {
  wire::TcpListener listener(0);
  PeerRun run;

  std::thread bob_thread([&run, &config, seed, port = listener.port()] {
    BobPeer bob(config, seed);
    auto io = wire::tcp_connect(port);
    ASSERT_NE(io, nullptr);
    io->set_recv_timeout_ms(30000);
    run.bob = bob.run_batch(*io);
  });

  AlicePeer alice(config, seed);
  auto io = listener.accept_transport();
  if (io != nullptr) {
    io->set_recv_timeout_ms(30000);
    run.alice = alice.run_batch(*io);
  }
  bob_thread.join();
  EXPECT_NE(io, nullptr);
  return run;
}

TEST(Peers, DistillByteIdenticalKeysOverTcp) {
  const PeerRun run = run_peers_once(small_config(), kSeed);

  ASSERT_TRUE(run.alice.accepted) << "reason " << static_cast<int>(run.alice.reason);
  ASSERT_TRUE(run.bob.accepted) << "reason " << static_cast<int>(run.bob.reason);
  EXPECT_TRUE(run.alice.digest_matched);
  EXPECT_TRUE(run.bob.digest_matched);

  // The acceptance bar: byte-identical key on both sides of the wire.
  ASSERT_GT(run.alice.key.size(), 0u);
  EXPECT_EQ(run.alice.key, run.bob.key);
  EXPECT_EQ(run.alice.key.to_bytes(), run.bob.key.to_bytes());

  EXPECT_EQ(run.alice.sifted_bits, run.bob.sifted_bits);
  EXPECT_EQ(run.alice.frame_id, run.bob.frame_id);
  EXPECT_DOUBLE_EQ(run.alice.qber_sampled, run.bob.qber_sampled);
  EXPECT_GT(run.alice.control_messages, 0u);
  EXPECT_GT(run.bob.control_messages, 0u);
  EXPECT_GT(run.alice.control_bytes, 0u);
}

TEST(Peers, MatchTheInProcessPipelineBitForBit) {
  const QkdLinkConfig config = small_config();
  const PeerRun run = run_peers_once(config, kSeed);
  ASSERT_TRUE(run.alice.accepted);

  // Same config, same seed, in one process: the pipeline must land on the
  // exact same distilled block — the wire moved the protocol, not the
  // randomness.
  QkdLinkSession session(config, kSeed);
  const BatchResult batch = session.run_batch();
  ASSERT_TRUE(batch.accepted);
  EXPECT_EQ(batch.key, run.alice.key);
  EXPECT_EQ(batch.sifted_bits, run.alice.sifted_bits);
  EXPECT_EQ(batch.errors_corrected, run.alice.errors_corrected);
  EXPECT_DOUBLE_EQ(batch.qber_sampled, run.alice.qber_sampled);
}

TEST(Peers, ConsecutiveBatchesKeepDistilling) {
  const QkdLinkConfig config = small_config();
  wire::TcpListener listener(0);
  PeerOutcome bob_first, bob_second;

  std::thread bob_thread([&, port = listener.port()] {
    BobPeer bob(config, kSeed);
    auto io = wire::tcp_connect(port);
    ASSERT_NE(io, nullptr);
    io->set_recv_timeout_ms(30000);
    bob_first = bob.run_batch(*io);
    bob_second = bob.run_batch(*io);
  });

  AlicePeer alice(config, kSeed);
  auto io = listener.accept_transport();
  ASSERT_NE(io, nullptr);
  io->set_recv_timeout_ms(30000);
  const PeerOutcome alice_first = alice.run_batch(*io);
  const PeerOutcome alice_second = alice.run_batch(*io);
  bob_thread.join();

  ASSERT_TRUE(alice_first.accepted);
  ASSERT_TRUE(alice_second.accepted);
  EXPECT_EQ(alice_first.key, bob_first.key);
  EXPECT_EQ(alice_second.key, bob_second.key);
  // Fresh entropy per frame: consecutive batches never repeat a key.
  EXPECT_FALSE(alice_first.key == alice_second.key);
  EXPECT_EQ(alice_second.frame_id, 1u);
}

TEST(Peers, DeadWireSurfacesAsChannelLostNotHang) {
  wire::TcpListener listener(0);
  std::unique_ptr<wire::TcpTransport> client;
  std::thread connector([&client, port = listener.port()] {
    client = wire::tcp_connect(port);
  });
  auto server = listener.accept_transport();
  connector.join();
  ASSERT_NE(client, nullptr);

  // Bob connects but Alice never speaks, then hangs up.
  client->set_recv_timeout_ms(100);
  server.reset();

  BobPeer bob(small_config(), kSeed);
  const PeerOutcome outcome = bob.run_batch(*client);
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.reason, AbortReason::kChannelLost);
}

}  // namespace
}  // namespace qkd::proto
