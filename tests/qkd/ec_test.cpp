#include "src/qkd/ec.hpp"

#include <gtest/gtest.h>

#include "tests/testing/seeded_rng.hpp"

#include <algorithm>

#include "src/common/rng.hpp"
#include "src/crypto/lfsr.hpp"

namespace qkd::proto {
namespace {

TEST(ParityQuery, SerializationRoundTrips) {
  ParityQuery q;
  q.kind = ParityQuery::Kind::kPermutedRange;
  q.seed = 0xdeadbeef;
  q.begin = 17;
  q.end = 244;
  EXPECT_EQ(ParityQuery::deserialize(q.serialize()), q);
}

TEST(ParityQuery, DeserializeRejectsGarbage) {
  EXPECT_THROW(ParityQuery::deserialize(Bytes{9}), std::invalid_argument);
  Bytes bad_kind;
  put_u8(bad_kind, 7);
  put_u32(bad_kind, 0);
  put_u32(bad_kind, 0);
  put_u32(bad_kind, 0);
  EXPECT_THROW(ParityQuery::deserialize(bad_kind), std::invalid_argument);
}

TEST(SubsetMask, DeterministicAndSeedSensitive) {
  EXPECT_EQ(subset_mask_from_seed(1, 500), subset_mask_from_seed(1, 500));
  EXPECT_NE(subset_mask_from_seed(1, 500), subset_mask_from_seed(2, 500));
}

TEST(SubsetMask, MasksAreLinearlyIndependentInPractice) {
  // The reproduction-note property: XORs of distinct masks must not collapse
  // into other masks of the family (the failure mode of literal LFSR
  // windows). Spot-check: mask(a) ^ mask(b) differs from every mask(c) for
  // a few dozen seeds.
  const std::size_t n = 256;
  const auto x = subset_mask_from_seed(10, n) ^ subset_mask_from_seed(11, n);
  for (std::uint32_t c = 0; c < 64; ++c) {
    EXPECT_NE(x, subset_mask_from_seed(c, n)) << c;
  }
}

TEST(LfsrMembers, MatchesMaskPositions) {
  const std::size_t n = 777;
  const auto members = lfsr_members(123, n);
  const auto mask = subset_mask_from_seed(123, n);
  std::size_t idx = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask.get(i)) {
      ASSERT_LT(idx, members.size());
      EXPECT_EQ(members[idx++], i);
    }
  }
  EXPECT_EQ(idx, members.size());
}

TEST(SeededPermutation, IsAPermutation) {
  const auto perm = seeded_permutation(99, 1000);
  auto sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(SeededPermutation, DeterministicAndSeedSensitive) {
  EXPECT_EQ(seeded_permutation(5, 500), seeded_permutation(5, 500));
  EXPECT_NE(seeded_permutation(5, 500), seeded_permutation(6, 500));
}

TEST(ParityOfMembers, MatchesBruteForce) {
  QKD_SEEDED_RNG(rng, 1);
  const auto bits = rng.next_bits(300);
  const auto members = lfsr_members(7, 300);
  for (std::size_t begin : {0u, 1u, 10u}) {
    for (std::size_t len : {0u, 1u, 5u, 50u}) {
      if (begin + len > members.size()) continue;
      bool expected = false;
      for (std::size_t i = begin; i < begin + len; ++i)
        expected ^= bits.get(members[i]);
      EXPECT_EQ(parity_of_members(bits, members, begin, begin + len), expected);
    }
  }
  EXPECT_THROW(parity_of_members(bits, members, 5, members.size() + 1),
               std::out_of_range);
}

TEST(LocalParityOracle, CountsEveryDisclosure) {
  QKD_SEEDED_RNG(rng, 2);
  const auto bits = rng.next_bits(400);
  LocalParityOracle oracle(bits);
  ParityQuery q;
  q.kind = ParityQuery::Kind::kLfsrSubset;
  q.seed = 11;
  q.begin = 0;
  q.end = 10;
  for (int i = 0; i < 5; ++i) oracle.parity(q);
  EXPECT_EQ(oracle.disclosed(), 5u);
}

TEST(LocalParityOracle, AnswersMatchDirectComputation) {
  QKD_SEEDED_RNG(rng, 3);
  const auto bits = rng.next_bits(600);
  LocalParityOracle oracle(bits);

  ParityQuery lfsr_q;
  lfsr_q.kind = ParityQuery::Kind::kLfsrSubset;
  lfsr_q.seed = 21;
  const auto members = lfsr_members(21, 600);
  lfsr_q.begin = 3;
  lfsr_q.end = static_cast<std::uint32_t>(members.size() - 2);
  EXPECT_EQ(oracle.parity(lfsr_q),
            parity_of_members(bits, members, 3, members.size() - 2));

  ParityQuery perm_q;
  perm_q.kind = ParityQuery::Kind::kPermutedRange;
  perm_q.seed = 31;
  perm_q.begin = 100;
  perm_q.end = 200;
  const auto perm = seeded_permutation(31, 600);
  EXPECT_EQ(oracle.parity(perm_q), parity_of_members(bits, perm, 100, 200));
}

TEST(LocalParityOracle, CacheSurvivesManySeeds) {
  QKD_SEEDED_RNG(rng, 4);
  const auto bits = rng.next_bits(100);
  LocalParityOracle oracle(bits);
  // Touch more than the cache capacity worth of distinct seeds, then verify
  // a recent one still answers correctly.
  for (std::uint32_t seed = 1; seed <= 200; ++seed) {
    ParityQuery q;
    q.kind = ParityQuery::Kind::kLfsrSubset;
    q.seed = seed;
    q.begin = 0;
    q.end = 1;
    oracle.parity(q);
  }
  const auto members = lfsr_members(200, 100);
  ParityQuery q;
  q.kind = ParityQuery::Kind::kLfsrSubset;
  q.seed = 200;
  q.begin = 0;
  q.end = static_cast<std::uint32_t>(members.size());
  EXPECT_EQ(oracle.parity(q),
            parity_of_members(bits, members, 0, members.size()));
}

}  // namespace
}  // namespace qkd::proto
