#include "src/qkd/sifting.hpp"

#include <gtest/gtest.h>

#include "src/optics/link.hpp"

namespace qkd::proto {
namespace {

qkd::optics::FrameResult small_frame(std::uint64_t seed,
                                     std::size_t slots = 200000) {
  qkd::optics::WeakCoherentLink link(qkd::optics::LinkParams{}, seed);
  return link.run_frame(slots);
}

TEST(Sifting, MessageSerializationRoundTrips) {
  const auto frame = small_frame(1);
  const SiftMessage msg = make_sift_message(42, frame.bob);
  const SiftMessage back = SiftMessage::deserialize(msg.serialize());
  EXPECT_EQ(back.frame_id, 42u);
  EXPECT_EQ(back.detected, msg.detected);
  EXPECT_EQ(back.bob_bases, msg.bob_bases);
}

TEST(Sifting, ResponseSerializationRoundTrips) {
  SiftResponse r;
  r.frame_id = 7;
  r.keep = qkd::BitVector::from_string("1011001");
  const SiftResponse back = SiftResponse::deserialize(r.serialize());
  EXPECT_EQ(back.frame_id, 7u);
  EXPECT_EQ(back.keep, r.keep);
}

TEST(Sifting, DeserializeRejectsGarbage) {
  EXPECT_THROW(SiftMessage::deserialize(Bytes{1, 2, 3}),
               std::invalid_argument);
  EXPECT_THROW(SiftResponse::deserialize(Bytes{}), std::invalid_argument);
}

TEST(Sifting, BothSidesAgreeOnSlotIndices) {
  const auto frame = small_frame(2);
  const SiftMessage msg = make_sift_message(0, frame.bob);
  const AliceSiftResult alice = alice_sift(frame.alice, msg);
  const SiftOutcome bob = bob_apply_response(frame.bob, msg, alice.response);
  EXPECT_EQ(alice.outcome.slot_indices, bob.slot_indices);
  EXPECT_EQ(alice.outcome.bits.size(), bob.bits.size());
}

TEST(Sifting, KeepsOnlyMatchingBasisDetections) {
  const auto frame = small_frame(3);
  const SiftMessage msg = make_sift_message(0, frame.bob);
  const AliceSiftResult alice = alice_sift(frame.alice, msg);
  for (std::uint32_t slot : alice.outcome.slot_indices) {
    EXPECT_TRUE(frame.bob.detected.get(slot));
    EXPECT_EQ(frame.alice.bases.get(slot), frame.bob.bases.get(slot));
  }
}

TEST(Sifting, SiftedFractionIsHalfOfDetections) {
  const auto frame = small_frame(4, 500000);
  const SiftMessage msg = make_sift_message(0, frame.bob);
  const AliceSiftResult alice = alice_sift(frame.alice, msg);
  const double detections =
      static_cast<double>(frame.bob.detected.popcount());
  ASSERT_GT(detections, 100);
  EXPECT_NEAR(static_cast<double>(alice.outcome.bits.size()) / detections,
              0.5, 0.08);
}

TEST(Sifting, SiftedBitsMostlyAgree) {
  // At the paper's operating point the sifted strings differ only by the
  // 6-8 % QBER.
  const auto frame = small_frame(5, 500000);
  const SiftMessage msg = make_sift_message(0, frame.bob);
  const AliceSiftResult alice = alice_sift(frame.alice, msg);
  const SiftOutcome bob = bob_apply_response(frame.bob, msg, alice.response);
  ASSERT_GT(alice.outcome.bits.size(), 100u);
  const double qber =
      static_cast<double>(alice.outcome.bits.hamming_distance(bob.bits)) /
      static_cast<double>(alice.outcome.bits.size());
  EXPECT_GT(qber, 0.02);
  EXPECT_LT(qber, 0.12);
}

TEST(Sifting, AliceRejectsWrongFrameSize) {
  const auto frame = small_frame(6, 10000);
  SiftMessage msg = make_sift_message(0, frame.bob);
  msg.detected.resize(5000);
  EXPECT_THROW(alice_sift(frame.alice, msg), std::invalid_argument);
}

TEST(Sifting, BobRejectsMismatchedResponse) {
  const auto frame = small_frame(7, 10000);
  const SiftMessage msg = make_sift_message(3, frame.bob);
  SiftResponse bad;
  bad.frame_id = 3;
  bad.keep = qkd::BitVector(msg.bob_bases.size() + 1);
  EXPECT_THROW(bob_apply_response(frame.bob, msg, bad), std::invalid_argument);
  SiftResponse wrong_frame;
  wrong_frame.frame_id = 4;
  wrong_frame.keep = qkd::BitVector(msg.bob_bases.size());
  EXPECT_THROW(bob_apply_response(frame.bob, msg, wrong_frame),
               std::invalid_argument);
}

TEST(Sifting, DeserializeRejectsInconsistentBasisCount) {
  const auto frame = small_frame(8, 10000);
  SiftMessage msg = make_sift_message(0, frame.bob);
  msg.bob_bases.push_back(true);  // one basis too many
  EXPECT_THROW(SiftMessage::deserialize(msg.serialize()),
               std::invalid_argument);
}

}  // namespace
}  // namespace qkd::proto
