// Scenario acceptance: scripted timelines run through the EventScheduler
// alone — no test-side interleaving loops — and the TimelineRecorder's
// series carry the assertions.
#include "src/sim/scenario.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace qkd::sim {
namespace {

using network::LinkState;
using network::MeshSimulation;
using network::NodeId;
using network::Topology;

/// relay_ring(6): relays 0..5 in a ring (link i joins relay i and relay
/// (i+1)%6), alice = node 6 on link 6 to relay 0, bob = node 7 on link 7 to
/// relay 3. Two disjoint relay paths: east 0-1-2-3 and west 0-5-4-3.
constexpr NodeId kAlice = 6;
constexpr NodeId kBob = 7;

TEST(Scenario, EavesdropRerouteRestoreRunsOnTheSchedulerAlone) {
  MeshSimulation mesh(Topology::relay_ring(6), 7);

  Scenario script;
  script.at(10 * kSecond, StartEavesdrop{5, 1.0})   // west path abandoned
      .at(45 * kSecond, KeyRequest{kAlice, kBob, 128})  // forced east
      .at(60 * kSecond, StopEavesdrop{5})           // Eve walks; west back
      .at(60 * kSecond, StartEavesdrop{0, 1.0})     // ...and taps the east
      .at(100 * kSecond, KeyRequest{kAlice, kBob, 128})  // must reroute west
      .at(130 * kSecond, StopEavesdrop{0});         // fiber trusted again

  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  const std::size_t dispatched = runner.run(180 * kSecond);

  // The scheduler did all the driving: distillation ticks, sampling, and
  // the six scripted actions.
  EXPECT_GT(dispatched, 300u);
  EXPECT_EQ(runner.clock().now(), 180 * kSecond);

  // Both requests were served.
  ASSERT_EQ(runner.key_requests().size(), 2u);
  const auto& first = runner.key_requests()[0];
  const auto& second = runner.key_requests()[1];
  ASSERT_TRUE(first.result.success);
  ASSERT_TRUE(second.result.success);
  EXPECT_EQ(mesh.stats().transports_succeeded, 2u);

  // First request went east (link 5 was abandoned), exposing relays
  // 0-1-2-3; the second had to reroute west around the tapped link 0.
  EXPECT_EQ(first.result.exposed_to, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(second.result.exposed_to, (std::vector<NodeId>{0, 5, 4, 3}));
  EXPECT_EQ(mesh.stats().reroutes, 1u);
  const auto& relinks = second.result.route.links;
  EXPECT_TRUE(std::find(relinks.begin(), relinks.end(), 0u) == relinks.end())
      << "rerouted path must avoid the eavesdropped link";

  // Timeline: link 0's pool was purged when the alarm abandoned it, and the
  // link reads unusable between the tap and the restore.
  const TimelineRecorder& recorder = runner.recorder();
  ASSERT_GE(recorder.points().size(), 170u);  // 1 Hz sampling + final
  const auto tapped = recorder.first_time(
      [](const TimelinePoint& p) { return !p.links[0].usable; });
  ASSERT_TRUE(tapped.has_value());
  EXPECT_GT(*tapped, 60 * kSecond - kSecond);
  EXPECT_LE(*tapped, 61 * kSecond);
  const auto restored = recorder.first_time([&](const TimelinePoint& p) {
    return p.t > *tapped && p.links[0].usable;
  });
  ASSERT_TRUE(restored.has_value());
  EXPECT_GT(*restored, 130 * kSecond - kSecond);
  EXPECT_LE(*restored, 131 * kSecond);

  // Pool depth series: flat zero while abandoned, growing after restore.
  const auto series = recorder.link_pool_series(0);
  const std::size_t at_120 = 119;  // ~t=120 s with 1 Hz sampling
  EXPECT_DOUBLE_EQ(series.at(at_120), 0.0);
  EXPECT_GT(series.back(), 0.0);

  // The run left a readable story: 6 scripted actions + 2 request outcomes.
  EXPECT_EQ(recorder.notes().size(), 8u);
  EXPECT_FALSE(recorder.render().empty());
}

TEST(Scenario, CompromisedRelayIsRoutedAroundThenPoisonsBothPaths) {
  MeshSimulation mesh(Topology::relay_ring(6), 11);

  Scenario script;
  script.at(30 * kSecond, KeyRequest{kAlice, kBob, 64})
      .at(40 * kSecond, CompromiseNode{1})               // east relay owned
      .at(50 * kSecond, KeyRequest{kAlice, kBob, 64})    // dodges west
      .at(60 * kSecond, CompromiseNode{4})               // west relay owned
      .at(70 * kSecond, KeyRequest{kAlice, kBob, 64});   // nowhere clean

  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  runner.run(80 * kSecond);

  ASSERT_EQ(runner.key_requests().size(), 3u);
  const auto& clean = runner.key_requests()[1];
  ASSERT_TRUE(clean.result.success);
  EXPECT_FALSE(clean.result.compromised)
      << "routing must dodge the single owned relay";
  EXPECT_EQ(clean.result.exposed_to, (std::vector<NodeId>{0, 5, 4, 3}));

  const auto& poisoned = runner.key_requests()[2];
  ASSERT_TRUE(poisoned.result.success);
  EXPECT_TRUE(poisoned.result.compromised)
      << "with both paths owned, delivery succeeds but is flagged";
  EXPECT_EQ(mesh.stats().transports_compromised, 1u);
}

TEST(Scenario, EngineBackedLinkDistillsViaScheduledBatchCompletions) {
  // One real engine-backed link: its Qframe completions are events on the
  // scheduler (no step()/advance() calls anywhere), and the recorder
  // watches the supply fill batch by batch.
  Topology topo;
  const NodeId a = topo.add_node("a", network::NodeKind::kEndpoint);
  const NodeId b = topo.add_node("b", network::NodeKind::kEndpoint);
  topo.add_link(a, b, {});
  network::LinkKeyService::Config engine;
  engine.proto.auth_replenish_bits = 0;
  engine.threads = 1;
  MeshSimulation mesh(std::move(topo), 5, engine);

  ScenarioRunner runner{Scenario{}};
  runner.attach_mesh(mesh);
  runner.run(10 * kSecond);

  // ~1.05 s per 2^20-slot frame at 1 MHz: nine batch events in 10 s.
  EXPECT_EQ(mesh.key_service()->session(0).totals().batches, 9u);
  EXPECT_GT(mesh.link_pool_bits(0), 0.0);

  // The pool series is non-decreasing and ends at the live value.
  const auto series = runner.recorder().link_pool_series(0);
  ASSERT_GE(series.size(), 10u);
  EXPECT_TRUE(std::is_sorted(series.begin(), series.end()));
  EXPECT_DOUBLE_EQ(series.back(), mesh.link_pool_bits(0));
}

TEST(Scenario, KeyRequestWithoutMeshThrows) {
  Scenario script;
  script.at(kSecond, KeyRequest{0, 1, 64});
  ScenarioRunner runner(std::move(script));
  EXPECT_THROW(runner.run(2 * kSecond), std::logic_error);
}

}  // namespace
}  // namespace qkd::sim
