// TimelineRecorder used standalone (its own sampling event on a scheduler,
// no ScenarioRunner): series shape, stop(), annotations and rendering.
#include "src/sim/timeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace qkd::sim {
namespace {

TEST(TimelineRecorder, SamplesMeshPeriodicallyUntilStopped) {
  network::MeshSimulation mesh(network::Topology::star(3), 1);
  SimClock clock;
  EventScheduler sched(clock);
  // Distillation on the same timeline the recorder samples.
  sched.every(kSecond, kSecond, [&mesh](SimTime) { mesh.step(1.0); });

  TimelineRecorder recorder;
  recorder.attach_mesh(mesh);
  recorder.start(sched, 2 * kSecond);
  sched.run_until(10 * kSecond);
  ASSERT_EQ(recorder.points().size(), 5u);  // t = 2, 4, 6, 8, 10
  EXPECT_EQ(recorder.points().front().t, 2 * kSecond);
  EXPECT_EQ(recorder.points().back().t, 10 * kSecond);
  ASSERT_EQ(recorder.points().front().links.size(),
            mesh.topology().link_count());

  const auto series = recorder.link_pool_series(0);
  ASSERT_EQ(series.size(), 5u);
  EXPECT_GT(series.front(), 0.0);
  EXPECT_GT(series.back(), series.front()) << "pools grow across samples";

  recorder.stop();
  sched.run_until(20 * kSecond);
  EXPECT_EQ(recorder.points().size(), 5u) << "stop() cancels the sampling";
}

TEST(TimelineRecorder, DoubleStartThrowsAndRestartAfterStopWorks) {
  SimClock clock;
  EventScheduler sched(clock);
  TimelineRecorder recorder;
  recorder.start(sched, kSecond);
  EXPECT_THROW(recorder.start(sched, kSecond), std::logic_error);
  recorder.stop();
  recorder.start(sched, kSecond);  // re-arming after stop is fine
  sched.run_until(3 * kSecond);
  EXPECT_EQ(recorder.points().size(), 3u);
}

TEST(TimelineRecorder, ToCsvExportsOneRowPerSampleWithStableHeader) {
  network::MeshSimulation mesh(network::Topology::star(3), 4);
  SimClock clock;
  EventScheduler sched(clock);
  sched.every(kSecond, kSecond, [&mesh](SimTime) { mesh.step(1.0); });
  TimelineRecorder recorder;
  recorder.attach_mesh(mesh);
  recorder.start(sched, kSecond);
  recorder.note(1500 * kMillisecond, "notes stay out of the CSV");
  sched.run_until(4 * kSecond);

  const std::string csv = recorder.to_csv();
  // Header names every link column plus the mesh counters.
  EXPECT_EQ(csv.rfind("t_s,link0_pool_bits,link0_usable", 0), 0u);
  EXPECT_NE(csv.find("link2_usable"), std::string::npos);
  EXPECT_NE(csv.find("mesh_reroutes"), std::string::npos);
  EXPECT_EQ(csv.find("notes stay out"), std::string::npos);

  // One row per sample plus the header, every row with the same arity.
  std::vector<std::string> lines;
  for (std::size_t start = 0; start < csv.size();) {
    const std::size_t end = csv.find('\n', start);
    lines.push_back(csv.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), recorder.points().size() + 1);
  const auto commas = [](const std::string& line) {
    return std::count(line.begin(), line.end(), ',');
  };
  for (const std::string& line : lines)
    EXPECT_EQ(commas(line), commas(lines[0])) << line;

  // First data row: t=1 s, link pools grown past zero, link usable.
  EXPECT_EQ(lines[1].rfind("1.000000,", 0), 0u);
  EXPECT_NE(lines[1].find(",1,"), std::string::npos);

  // An empty recorder still emits a parseable header.
  EXPECT_EQ(TimelineRecorder().to_csv(), "t_s\n");
}

TEST(TimelineRecorder, ToCsvPadsRowsWhenASourceAttachesMidSeries) {
  // stop() + restart keeps old points; a source attached in between
  // widens later samples. The CSV must stay rectangular: the union of
  // columns in the header, zeros where an early sample had no source.
  network::MeshSimulation mesh(network::Topology::star(2), 5);
  SimClock clock;
  EventScheduler sched(clock);
  TimelineRecorder recorder;
  recorder.start(sched, kSecond);
  sched.run_until(2 * kSecond);  // two sourceless samples
  recorder.stop();
  recorder.attach_mesh(mesh);
  mesh.step(1.0);
  recorder.start(sched, kSecond);
  sched.run_until(4 * kSecond);  // two mesh-backed samples

  const std::string csv = recorder.to_csv();
  EXPECT_NE(csv.find("link1_usable"), std::string::npos);
  std::vector<std::string> lines;
  for (std::size_t start = 0; start < csv.size();) {
    const std::size_t end = csv.find('\n', start);
    lines.push_back(csv.substr(start, end - start));
    start = end + 1;
  }
  ASSERT_EQ(lines.size(), 5u);  // header + 4 samples
  const auto commas = [](const std::string& line) {
    return std::count(line.begin(), line.end(), ',');
  };
  for (const std::string& line : lines)
    EXPECT_EQ(commas(line), commas(lines[0])) << line;
  EXPECT_NE(lines[1].find(",0.0,0"), std::string::npos)
      << "pre-attachment rows zero-padded";
}

TEST(TimelineRecorder, RenderInterleavesNotesWithSamples) {
  network::MeshSimulation mesh(network::Topology::star(2), 2);
  SimClock clock;
  EventScheduler sched(clock);
  TimelineRecorder recorder;
  recorder.attach_mesh(mesh);
  recorder.start(sched, kSecond);
  recorder.note(1500 * kMillisecond, "backhoe sighted");
  sched.run_until(3 * kSecond);
  const std::string out = recorder.render();
  EXPECT_NE(out.find("backhoe sighted"), std::string::npos);
  // The note lands between the t=1 s and t=2 s sample lines.
  EXPECT_LT(out.find("t=     1.0s"), out.find("backhoe sighted"));
  EXPECT_LT(out.find("backhoe sighted"), out.find("t=     2.0s"));
}

}  // namespace
}  // namespace qkd::sim
