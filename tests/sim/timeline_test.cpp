// TimelineRecorder used standalone (its own sampling event on a scheduler,
// no ScenarioRunner): series shape, stop(), annotations and rendering.
#include "src/sim/timeline.hpp"

#include <gtest/gtest.h>

namespace qkd::sim {
namespace {

TEST(TimelineRecorder, SamplesMeshPeriodicallyUntilStopped) {
  network::MeshSimulation mesh(network::Topology::star(3), 1);
  SimClock clock;
  EventScheduler sched(clock);
  // Distillation on the same timeline the recorder samples.
  sched.every(kSecond, kSecond, [&mesh](SimTime) { mesh.step(1.0); });

  TimelineRecorder recorder;
  recorder.attach_mesh(mesh);
  recorder.start(sched, 2 * kSecond);
  sched.run_until(10 * kSecond);
  ASSERT_EQ(recorder.points().size(), 5u);  // t = 2, 4, 6, 8, 10
  EXPECT_EQ(recorder.points().front().t, 2 * kSecond);
  EXPECT_EQ(recorder.points().back().t, 10 * kSecond);
  ASSERT_EQ(recorder.points().front().links.size(),
            mesh.topology().link_count());

  const auto series = recorder.link_pool_series(0);
  ASSERT_EQ(series.size(), 5u);
  EXPECT_GT(series.front(), 0.0);
  EXPECT_GT(series.back(), series.front()) << "pools grow across samples";

  recorder.stop();
  sched.run_until(20 * kSecond);
  EXPECT_EQ(recorder.points().size(), 5u) << "stop() cancels the sampling";
}

TEST(TimelineRecorder, DoubleStartThrowsAndRestartAfterStopWorks) {
  SimClock clock;
  EventScheduler sched(clock);
  TimelineRecorder recorder;
  recorder.start(sched, kSecond);
  EXPECT_THROW(recorder.start(sched, kSecond), std::logic_error);
  recorder.stop();
  recorder.start(sched, kSecond);  // re-arming after stop is fine
  sched.run_until(3 * kSecond);
  EXPECT_EQ(recorder.points().size(), 3u);
}

TEST(TimelineRecorder, RenderInterleavesNotesWithSamples) {
  network::MeshSimulation mesh(network::Topology::star(2), 2);
  SimClock clock;
  EventScheduler sched(clock);
  TimelineRecorder recorder;
  recorder.attach_mesh(mesh);
  recorder.start(sched, kSecond);
  recorder.note(1500 * kMillisecond, "backhoe sighted");
  sched.run_until(3 * kSecond);
  const std::string out = recorder.render();
  EXPECT_NE(out.find("backhoe sighted"), std::string::npos);
  // The note lands between the t=1 s and t=2 s sample lines.
  EXPECT_LT(out.find("t=     1.0s"), out.find("backhoe sighted"));
  EXPECT_LT(out.find("backhoe sighted"), out.find("t=     2.0s"));
}

}  // namespace
}  // namespace qkd::sim
