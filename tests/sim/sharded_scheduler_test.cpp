// ShardedScheduler: windowed parallel execution of N shard streams against
// one global stream — window boundaries, barrier ordering, clock lockstep,
// and the determinism contract (same behavior for any lane count).
#include "src/sim/sharded_scheduler.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace qkd::sim {
namespace {

struct Harness {
  explicit Harness(std::size_t shards, std::size_t lanes = 1,
                   SimTime quantum = 10 * kMillisecond)
      : scheduler(clock),
        pool(std::make_shared<common::WorkerPool>(lanes)),
        sharded(scheduler, shards, pool,
                ShardedScheduler::Config{quantum}) {}

  qkd::SimClock clock;
  EventScheduler scheduler;
  std::shared_ptr<common::WorkerPool> pool;
  ShardedScheduler sharded;
};

TEST(ShardedScheduler, RejectsDegenerateConfigs) {
  qkd::SimClock clock;
  EventScheduler scheduler(clock);
  EXPECT_THROW(ShardedScheduler(scheduler, 0, nullptr),
               std::invalid_argument);
  EXPECT_THROW(
      ShardedScheduler(scheduler, 2, nullptr, ShardedScheduler::Config{0}),
      std::invalid_argument);
}

TEST(ShardedScheduler, NullPoolGetsAPrivateSingleLane) {
  qkd::SimClock clock;
  EventScheduler scheduler(clock);
  ShardedScheduler sharded(scheduler, 2, nullptr);
  EXPECT_EQ(sharded.pool().lanes(), 1u);
  EXPECT_EQ(sharded.shard_count(), 2u);
}

TEST(ShardedScheduler, AllStreamsReachTheHorizonTogether) {
  Harness h(3);
  std::size_t fired = 0;
  h.sharded.shard_stream(0).after(3 * kMillisecond,
                                  [&](SimTime) { ++fired; });
  h.sharded.shard_stream(2).after(25 * kMillisecond,
                                  [&](SimTime) { ++fired; });
  h.scheduler.after(17 * kMillisecond, [&](SimTime) { ++fired; });
  const std::size_t dispatched = h.sharded.run_until(kSecond);
  EXPECT_EQ(dispatched, 3u);
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(h.sharded.now(), kSecond);
  EXPECT_EQ(h.sharded.shard_stream(0).now(), kSecond);
  EXPECT_EQ(h.sharded.shard_stream(1).now(), kSecond);
  EXPECT_EQ(h.sharded.shard_stream(2).now(), kSecond);
}

TEST(ShardedScheduler, WindowsBreakAtGlobalEventsAndQuantum) {
  Harness h(1, 1, /*quantum=*/10 * kMillisecond);
  std::vector<SimTime> barrier_times;
  h.sharded.add_barrier_task(
      [&](SimTime now) { barrier_times.push_back(now); });
  // A global event off the quantum grid forces a window boundary there.
  h.scheduler.at(13 * kMillisecond, [](SimTime) {});
  h.sharded.run_until(30 * kMillisecond);
  // Windows: 10 (quantum), 13 (global event), 23 (quantum), 30 (horizon).
  const std::vector<SimTime> expected{10 * kMillisecond, 13 * kMillisecond,
                                      23 * kMillisecond, 30 * kMillisecond};
  EXPECT_EQ(barrier_times, expected);
}

TEST(ShardedScheduler, ShardPhaseThenBarrierThenGlobalWithinAWindow) {
  Harness h(2);
  std::vector<std::string> log;
  h.sharded.shard_stream(0).at(5 * kMillisecond,
                               [&](SimTime) { log.push_back("shard"); });
  h.sharded.add_barrier_task([&](SimTime) { log.push_back("barrier"); });
  h.scheduler.at(5 * kMillisecond, [&](SimTime) { log.push_back("global"); });
  h.sharded.run_until(5 * kMillisecond);
  const std::vector<std::string> expected{"shard", "barrier", "global"};
  EXPECT_EQ(log, expected);
}

TEST(ShardedScheduler, BarrierArmedShardEventRunsInTheNextWindow) {
  Harness h(1, 1, /*quantum=*/10 * kMillisecond);
  std::vector<SimTime> ran_at;
  bool armed = false;
  h.sharded.add_barrier_task([&](SimTime now) {
    if (armed) return;
    armed = true;
    // Armed AT the current instant from the barrier: must not run until
    // the next window's shard phase.
    h.sharded.shard_stream(0).at(
        now, [&](SimTime t) { ran_at.push_back(t); });
  });
  h.sharded.run_until(30 * kMillisecond);
  ASSERT_EQ(ran_at.size(), 1u);
  // Armed at the 10ms barrier, dispatched in the window ending at 20ms.
  EXPECT_EQ(ran_at[0], 10 * kMillisecond);
}

TEST(ShardedScheduler, PeriodicShardWorkCountsAllDispatches) {
  Harness h(4, 2);
  std::vector<std::size_t> counts(4, 0);
  for (std::size_t s = 0; s < 4; ++s)
    h.sharded.shard_stream(s).every(kMillisecond, kMillisecond,
                                    [&counts, s](SimTime) { ++counts[s]; });
  const std::size_t dispatched = h.sharded.run_until(100 * kMillisecond);
  EXPECT_EQ(dispatched, 400u);
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(counts[s], 100u);
}

/// The determinism contract: per-stream event sequences and barrier times
/// are identical no matter how many worker lanes execute the shard phase.
TEST(ShardedScheduler, LaneCountDoesNotChangePerStreamSequences) {
  const auto run = [](std::size_t lanes) {
    Harness h(3, lanes, 7 * kMillisecond);
    std::vector<std::vector<SimTime>> per_shard(3);
    std::vector<SimTime> barriers;
    std::mutex mu;  // shard callbacks run concurrently across lanes
    for (std::size_t s = 0; s < 3; ++s) {
      const SimTime period = (s + 1) * kMillisecond;
      h.sharded.shard_stream(s).every(period, period,
                                      [&per_shard, &mu, s](SimTime t) {
                                        std::scoped_lock lock(mu);
                                        per_shard[s].push_back(t);
                                      });
    }
    h.sharded.add_barrier_task(
        [&](SimTime now) { barriers.push_back(now); });
    h.scheduler.every(5 * kMillisecond, 5 * kMillisecond, [](SimTime) {});
    h.sharded.run_until(50 * kMillisecond);
    return std::make_pair(per_shard, barriers);
  };
  const auto [shards1, barriers1] = run(1);
  const auto [shards3, barriers3] = run(3);
  EXPECT_EQ(shards1, shards3);
  EXPECT_EQ(barriers1, barriers3);
}

TEST(ShardedScheduler, RejectsHorizonInThePast) {
  Harness h(1);
  h.sharded.run_until(kSecond);
  EXPECT_THROW(h.sharded.run_until(kMillisecond), std::invalid_argument);
}

}  // namespace
}  // namespace qkd::sim
