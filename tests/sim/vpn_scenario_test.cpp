// The VPN stack on the event timeline: IKE rekey timers, SA rollover and
// supply-replenished wakeups all run as scheduled deadline events — the
// tests never call VpnLinkSimulation::advance() or tick anything by hand.
#include <gtest/gtest.h>

#include "tests/testing/seeded_rng.hpp"

#include "src/common/rng.hpp"
#include "src/sim/scenario.hpp"

namespace qkd::sim {
namespace {

using ipsec::CipherAlgo;
using ipsec::IpPacket;
using ipsec::PolicyAction;
using ipsec::QkdMode;
using ipsec::SpdEntry;
using ipsec::VpnLinkSimulation;
using ipsec::parse_ipv4;

SpdEntry protect_policy(double lifetime_s = 20.0) {
  SpdEntry entry;
  entry.name = "vpn";
  entry.selector.src_prefix = parse_ipv4("10.1.0.0");
  entry.selector.src_mask = 0xffff0000;
  entry.selector.dst_prefix = parse_ipv4("10.2.0.0");
  entry.selector.dst_mask = 0xffff0000;
  entry.action = PolicyAction::kProtect;
  entry.cipher = CipherAlgo::kAes128;
  entry.qkd_mode = QkdMode::kHybrid;
  entry.qblocks_per_rekey = 1;
  entry.lifetime_seconds = lifetime_s;
  return entry;
}

IpPacket red_packet(std::uint64_t seq) {
  IpPacket packet;
  packet.src = parse_ipv4("10.1.0.5");
  packet.dst = parse_ipv4("10.2.0.7");
  packet.payload = Bytes{'p', 'k', 't', static_cast<std::uint8_t>(seq)};
  return packet;
}

TEST(VpnScenario, TunnelRunsOnScheduledDeadlinesWithEngineFeed) {
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 3);
  vpn.install_mirrored_policy(protect_policy(/*lifetime_s=*/20.0));
  // Slowed trigger: ~4.2 s Qframes, ~300 net bits each — the same supply
  // economics at a quarter of the simulated pulses (wall time is
  // proportional to pulses, and this test's job is the deadline wiring,
  // not throughput).
  qkd::proto::QkdLinkConfig feed;
  feed.link.pulse_rate_hz = 0.25e6;
  feed.auth_replenish_bits = 64;
  vpn.enable_engine_feed(feed, 3);
  vpn.start();

  Scenario script;
  // Let the feed distill past a Qblock per lane, then run three bursts
  // across two SA lifetimes so rollover must happen mid-traffic.
  script.at(30 * kSecond, TrafficBurst{0, 5.0, 2.0})
      .at(50 * kSecond, TrafficBurst{0, 5.0, 2.0})
      .at(70 * kSecond, TrafficBurst{0, 5.0, 2.0});

  ScenarioRunner runner(std::move(script));
  runner.attach_vpn(vpn);
  runner.set_traffic_source(red_packet);
  runner.run(80 * kSecond);

  // Thirty packets crossed the tunnel.
  EXPECT_EQ(vpn.a().stats().esp_sent, 30u);
  EXPECT_EQ(vpn.b().stats().delivered, 30u);

  // The 20 s SA lifetime forced rollover between bursts, driven purely by
  // the next_deadline() wakeups the runner scheduled.
  EXPECT_GE(vpn.a().stats().sa_rollovers, 1u);
  EXPECT_GE(vpn.a().ike().stats().phase2_completed, 2u);

  // The scheduled batch completions really delivered quantum material and
  // the rekeys really consumed it (hybrid grants drain the pool down, so
  // assert on flow, not residue); the recorder saw the SA state.
  EXPECT_GT(vpn.a().key_pool().stats().bits_deposited, 0u);
  EXPECT_GT(vpn.a().ike().stats().qblocks_consumed, 0u);
  const auto& points = runner.recorder().points();
  ASSERT_GE(points.size(), 80u);
  EXPECT_GT(points.back().tunnels[0].phase2_completed, 0u);
  const auto sa_up = runner.recorder().first_time([](const TimelinePoint& p) {
    return p.tunnels[0].sas_installed > 0;
  });
  ASSERT_TRUE(sa_up.has_value());
  EXPECT_GT(*sa_up, 30 * kSecond - kSecond)
      << "no SA before the first burst asked for one";
}

TEST(VpnScenario, EveOnTheFeedStarvesIkeUntilSheLeaves) {
  // The Sec. 7 DoS on the timeline: Eve's intercept-resend suppresses
  // distillation (every batch aborts on the QBER alarm), OTP rekey requests
  // starve, and her departure replenishes the pools — the replenish wakeup
  // revives the stalled negotiation with no polling loop in sight.
  // An OTP offer earmarks 3 * qblocks_per_rekey Qblocks from one lane, so
  // the tunnel needs ~6 Qblocks of total pool before it can even offer;
  // put the low-water mark exactly there so the replenish crossing is the
  // "enough to negotiate again" signal.
  VpnLinkSimulation::Params params;
  params.supply_low_water_bits = 6 * keystore::KeySupply::kQblockBits;
  VpnLinkSimulation vpn(params, 9);
  SpdEntry policy = protect_policy(/*lifetime_s=*/600.0);
  policy.cipher = CipherAlgo::kOneTimePad;
  policy.qkd_mode = QkdMode::kOtp;
  policy.qblocks_per_rekey = 1;
  vpn.install_mirrored_policy(policy);
  // ~300 net bits per 1.05 s batch; extra prepositioned auth pad keeps the
  // control channel authenticated through Eve's long all-abort stretch.
  qkd::proto::QkdLinkConfig feed;
  feed.auth_replenish_bits = 64;
  feed.preposition_extra_bits = 1 << 15;
  vpn.enable_engine_feed(feed, 9);
  vpn.start();

  Scenario script;
  script.at(kSecond, StartEavesdrop{0, 1.0})  // suppress from the start
      .at(6 * kSecond, TrafficBurst{0, 1.0, 1.0})  // OTP wants key: starves
      .at(10 * kSecond, StopEavesdrop{0});    // distillation resumes

  ScenarioRunner runner(std::move(script));
  runner.attach_vpn(vpn);
  runner.set_traffic_source(red_packet);
  runner.run(45 * kSecond);

  // While Eve intercepted, no batch was accepted and the negotiation could
  // not buy its Qblocks.
  const auto& totals = vpn.key_service()->session(0).totals();
  EXPECT_GT(totals.aborted_qber(), 0u);
  EXPECT_GT(vpn.a().ike().stats().supply_exhausted_events, 0u);

  // After she left, the feed refilled the mirrored pools and the stalled
  // tunnel came up; the queued packet was finally delivered.
  EXPECT_GE(vpn.a().ike().stats().phase2_completed, 1u);
  EXPECT_EQ(vpn.b().stats().delivered, 1u);
  EXPECT_GT(vpn.a().stats().supply_replenished, 0u);

  // Timeline shows the starvation window: no SA while Eve held the link.
  const auto sa_up = runner.recorder().first_time([](const TimelinePoint& p) {
    return p.tunnels[0].sas_installed > 0;
  });
  ASSERT_TRUE(sa_up.has_value());
  EXPECT_GT(*sa_up, 10 * kSecond) << "no SA while Eve held the link";
}

TEST(VpnScenario, TrafficBurstWithoutSourceThrows) {
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 1);
  vpn.install_mirrored_policy(protect_policy());
  QKD_SEEDED_RNG(rng, 1);
  vpn.deposit_key_material(rng.next_bits(16 * 1024));
  vpn.start();
  Scenario script;
  script.at(kSecond, TrafficBurst{0, 1.0, 1.0});
  ScenarioRunner runner(std::move(script));
  runner.attach_vpn(vpn);
  EXPECT_THROW(runner.run(2 * kSecond), std::logic_error);
}

}  // namespace
}  // namespace qkd::sim
