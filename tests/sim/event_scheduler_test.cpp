// EventScheduler: ordering, FIFO tie-breaks, periodic timers, cancellation
// (including self-cancellation from inside a callback), and clock coupling.
#include "src/sim/event_scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace qkd::sim {
namespace {

TEST(EventScheduler, DispatchesInTimeOrderAndAdvancesClock) {
  SimClock clock;
  EventScheduler sched(clock);
  std::vector<std::string> log;
  sched.at(3 * kSecond, [&](SimTime t) {
    EXPECT_EQ(t, 3 * kSecond);
    EXPECT_EQ(clock.now(), 3 * kSecond);
    log.push_back("c");
  });
  sched.at(kSecond, [&](SimTime) { log.push_back("a"); });
  sched.after(2 * kSecond, [&](SimTime) { log.push_back("b"); });
  EXPECT_EQ(sched.run_until(10 * kSecond), 3u);
  EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(clock.now(), 10 * kSecond) << "run_until lands on the horizon";
  EXPECT_TRUE(sched.empty());
}

TEST(EventScheduler, SameInstantTiesBreakInScheduleOrder) {
  SimClock clock;
  EventScheduler sched(clock);
  std::vector<int> order;
  for (int i = 0; i < 16; ++i)
    sched.at(kSecond, [&order, i](SimTime) { order.push_back(i); });
  sched.run_until(kSecond);
  std::vector<int> expected;
  for (int i = 0; i < 16; ++i) expected.push_back(i);
  EXPECT_EQ(order, expected);
}

TEST(EventScheduler, SchedulingInThePastThrows) {
  SimClock clock;
  clock.advance(5 * kSecond);
  EventScheduler sched(clock);
  EXPECT_THROW(sched.at(4 * kSecond, [](SimTime) {}), std::invalid_argument);
  EXPECT_THROW(sched.after(-1, [](SimTime) {}), std::invalid_argument);
  EXPECT_THROW(sched.every(0, 0, [](SimTime) {}), std::invalid_argument);
  // Scheduling AT the current instant is legal: fires on the next dispatch.
  bool fired = false;
  sched.at(5 * kSecond, [&](SimTime) { fired = true; });
  sched.run_until(5 * kSecond);
  EXPECT_TRUE(fired);
}

TEST(EventScheduler, PeriodicTimerFiresEveryPeriodUntilCancelled) {
  SimClock clock;
  EventScheduler sched(clock);
  std::vector<SimTime> fires;
  const auto handle =
      sched.every(kSecond, 2 * kSecond, [&](SimTime t) { fires.push_back(t); });
  sched.run_until(6 * kSecond);  // fires at 1, 3, 5
  ASSERT_EQ(fires.size(), 3u);
  EXPECT_EQ(fires[0], kSecond);
  EXPECT_EQ(fires[1], 3 * kSecond);
  EXPECT_EQ(fires[2], 5 * kSecond);
  EXPECT_TRUE(sched.cancel(handle));
  EXPECT_EQ(sched.run_until(20 * kSecond), 0u);
  EXPECT_EQ(fires.size(), 3u);
}

TEST(EventScheduler, CancelledOneShotNeverFiresAndCancelIsIdempotent) {
  SimClock clock;
  EventScheduler sched(clock);
  bool fired = false;
  const auto handle = sched.at(kSecond, [&](SimTime) { fired = true; });
  EXPECT_TRUE(sched.cancel(handle));
  EXPECT_FALSE(sched.cancel(handle)) << "second cancel reports nothing live";
  EXPECT_FALSE(sched.cancel(EventScheduler::Handle())) << "inert handle";
  sched.run_until(5 * kSecond);
  EXPECT_FALSE(fired);
}

TEST(EventScheduler, PeriodicCanCancelItselfFromItsOwnCallback) {
  SimClock clock;
  EventScheduler sched(clock);
  int fires = 0;
  EventScheduler::Handle handle;
  handle = sched.every(kSecond, kSecond, [&](SimTime) {
    if (++fires == 3) sched.cancel(handle);
  });
  sched.run_until(kMinute);
  EXPECT_EQ(fires, 3);
  EXPECT_TRUE(sched.empty());
}

TEST(EventScheduler, CallbackMayScheduleWithinTheRunningWindow) {
  SimClock clock;
  EventScheduler sched(clock);
  std::vector<std::string> log;
  sched.at(kSecond, [&](SimTime t) {
    log.push_back("first");
    sched.at(t + kSecond, [&](SimTime) { log.push_back("chained"); });
    sched.at(t, [&](SimTime) { log.push_back("same-instant"); });
  });
  EXPECT_EQ(sched.run_until(3 * kSecond), 3u)
      << "events armed during dispatch join this run";
  EXPECT_EQ(log,
            (std::vector<std::string>{"first", "same-instant", "chained"}));
}

TEST(EventScheduler, NestedDispatchMayCancelTheOuterEventSafely) {
  // A periodic event nests a dispatch (run_one) whose inner callback
  // cancels the *outer*, still-executing event: the outer callback's
  // std::function must survive its own call, and the timer must not
  // re-arm.
  SimClock clock;
  EventScheduler sched(clock);
  int outer_fires = 0;
  int inner_fires = 0;
  EventScheduler::Handle outer;
  outer = sched.every(kSecond, kSecond, [&](SimTime t) {
    ++outer_fires;
    sched.at(t, [&](SimTime) {
      ++inner_fires;
      sched.cancel(outer);
    });
    EXPECT_TRUE(sched.run_one());  // nested dispatch of the inner event
  });
  sched.run_until(kMinute);
  EXPECT_EQ(outer_fires, 1);
  EXPECT_EQ(inner_fires, 1);
  EXPECT_TRUE(sched.empty()) << "cancelled-while-executing timer must not re-arm";
}

TEST(EventScheduler, ThrowingCallbackIsRetiredAndSchedulerStaysUsable) {
  SimClock clock;
  EventScheduler sched(clock);
  sched.every(kSecond, kSecond, [](SimTime) {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW(sched.run_until(5 * kSecond), std::runtime_error);
  // The throwing event was retired (no re-arm), the clock stopped at the
  // failure instant, and fresh events still dispatch.
  EXPECT_EQ(clock.now(), kSecond);
  bool fired = false;
  sched.at(2 * kSecond, [&](SimTime) { fired = true; });
  sched.run_until(5 * kSecond);
  EXPECT_TRUE(fired);
  EXPECT_TRUE(sched.empty());
}

TEST(EventScheduler, NestedDispatchPastTheOuterHorizonIsTolerated) {
  // A callback nests run_one() while the next pending event lies beyond
  // the outer run_until horizon: the nested dispatch carries the clock past
  // it, and the outer call's final landing must be a no-op, not an error.
  SimClock clock;
  EventScheduler sched(clock);
  bool late_fired = false;
  sched.at(10 * kSecond, [&](SimTime) {
    sched.at(80 * kSecond, [&](SimTime) { late_fired = true; });
    EXPECT_TRUE(sched.run_one());
  });
  EXPECT_EQ(sched.run_until(50 * kSecond), 1u);
  EXPECT_TRUE(late_fired);
  EXPECT_EQ(clock.now(), 80 * kSecond);
}

TEST(EventScheduler, RunOneAndNextTimeSkipCancelledEntries) {
  SimClock clock;
  EventScheduler sched(clock);
  bool fired = false;
  const auto dead = sched.at(kSecond, [](SimTime) { FAIL(); });
  sched.at(2 * kSecond, [&](SimTime) { fired = true; });
  sched.cancel(dead);
  ASSERT_TRUE(sched.next_time().has_value());
  EXPECT_EQ(*sched.next_time(), 2 * kSecond);
  EXPECT_TRUE(sched.run_one());
  EXPECT_TRUE(fired);
  EXPECT_EQ(clock.now(), 2 * kSecond);
  EXPECT_FALSE(sched.run_one());
  EXPECT_FALSE(sched.next_time().has_value());
}

TEST(EventScheduler, RunUntilStopsAtHorizonLeavingLaterEventsPending) {
  SimClock clock;
  EventScheduler sched(clock);
  int fired = 0;
  sched.at(kSecond, [&](SimTime) { ++fired; });
  sched.at(3 * kSecond, [&](SimTime) { ++fired; });
  EXPECT_EQ(sched.run_until(2 * kSecond), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sched.pending(), 1u);
  EXPECT_EQ(sched.run_until(3 * kSecond), 1u);
  EXPECT_EQ(fired, 2);
  EXPECT_THROW(sched.run_until(kSecond), std::invalid_argument)
      << "horizons never move backwards";
}

TEST(EventScheduler, TwoPeriodicTimersInterleaveDeterministically) {
  SimClock clock;
  EventScheduler sched(clock);
  std::vector<std::string> log;
  sched.every(kSecond, kSecond, [&](SimTime) { log.push_back("fast"); });
  sched.every(2 * kSecond, 2 * kSecond, [&](SimTime) { log.push_back("slow"); });
  sched.run_until(4 * kSecond);
  // Each firing re-arms with a fresh sequence number, so at a shared
  // instant the timer armed longest ago fires first: t=1 fast; t=2 slow
  // (armed at 0) before fast (re-armed at 1); t=3 fast; t=4 slow before
  // fast.
  EXPECT_EQ(log, (std::vector<std::string>{"fast", "slow", "fast", "fast",
                                           "slow", "fast"}));
  EXPECT_EQ(sched.dispatched(), 6u);
}

}  // namespace
}  // namespace qkd::sim
