// The ClassicalImpairment scenario action: degrading one link's CLASSICAL
// channel (the framed byte stream the distillation dialogue crosses)
// without touching the quantum fiber. Latency stalls the lockstep dialogue
// and lowers the distilled rate; loss inflates the measured control
// traffic through retransmission; an analytic mesh records the action as
// a no-op.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/sim/scenario.hpp"

namespace qkd::sim {
namespace {

using network::MeshSimulation;
using network::NodeId;
using network::Topology;

/// One engine-backed a-b link (the classical channel only exists in engine
/// mode).
MeshSimulation engine_pair(std::uint64_t seed) {
  Topology topo;
  const NodeId a = topo.add_node("a", network::NodeKind::kEndpoint);
  const NodeId b = topo.add_node("b", network::NodeKind::kEndpoint);
  topo.add_link(a, b, {});
  network::LinkKeyService::Config engine;
  engine.proto.auth_replenish_bits = 0;
  engine.threads = 1;
  return MeshSimulation(std::move(topo), seed, engine);
}

std::size_t batches_under(Scenario script, MeshSimulation& mesh,
                          SimTime horizon) {
  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  runner.run(horizon);
  return mesh.key_service()->session(0).totals().batches;
}

TEST(ClassicalImpairmentScenario, LatencySpikeStallsDistillationNotDeadlock) {
  MeshSimulation baseline_mesh = engine_pair(5);
  const std::size_t baseline = batches_under({}, baseline_mesh, 20 * kSecond);
  ASSERT_GT(baseline, 10u);

  // Same link, but from t=0 every control frame pays 20 ms one way: the
  // lockstep dialogue stalls by latency x messages per batch, so fewer
  // Qframes complete in the same horizon — yet every batch that runs
  // still completes (stall, not deadlock).
  MeshSimulation impaired_mesh = engine_pair(5);
  Scenario script;
  script.at(0, ClassicalImpairment{0, 20 * kMillisecond, 0.0, 0.0});
  const std::size_t impaired =
      batches_under(std::move(script), impaired_mesh, 20 * kSecond);

  EXPECT_GT(impaired, 0u);
  EXPECT_LT(impaired, baseline);
  const auto& totals = impaired_mesh.key_service()->session(0).totals();
  EXPECT_GT(totals.accepted_batches, 0u);
  EXPECT_GT(impaired_mesh.link_pool_bits(0), 0.0);
}

TEST(ClassicalImpairmentScenario, LossInflatesControlTrafficButKeyStillLands) {
  MeshSimulation clean_mesh = engine_pair(9);
  ScenarioRunner clean_runner{Scenario{}};
  clean_runner.attach_mesh(clean_mesh);
  clean_runner.run(10 * kSecond);
  const auto& clean_stats =
      clean_mesh.key_service()->session(0).channel().stats();
  ASSERT_EQ(clean_stats.lost, 0u);
  const std::uint64_t clean_messages =
      clean_stats.messages_ab + clean_stats.messages_ba;

  MeshSimulation lossy_mesh = engine_pair(9);
  Scenario script;
  script.at(0, ClassicalImpairment{0, 0, 0.08, 0.0});
  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(lossy_mesh);
  runner.run(10 * kSecond);

  const auto& lossy_stats =
      lossy_mesh.key_service()->session(0).channel().stats();
  EXPECT_GT(lossy_stats.lost, 0u);
  // Retransmission recovers every lost frame, at the cost of more
  // delivered control messages per distilled bit.
  EXPECT_GT(lossy_stats.messages_ab + lossy_stats.messages_ba,
            clean_messages);
  EXPECT_GT(lossy_mesh.key_service()->session(0).totals().accepted_batches,
            0u);
  EXPECT_GT(lossy_mesh.link_pool_bits(0), 0.0);
}

TEST(ClassicalImpairmentScenario, AllZeroActionRestoresACleanChannel) {
  MeshSimulation mesh = engine_pair(13);
  Scenario script;
  script.at(0, ClassicalImpairment{0, 50 * kMillisecond, 0.0, 0.0})
      .at(5 * kSecond, ClassicalImpairment{0});  // lifted
  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  runner.run(10 * kSecond);

  const auto& channel = mesh.key_service()->session(0).channel();
  EXPECT_EQ(channel.conditions().latency, 0);
  EXPECT_DOUBLE_EQ(channel.conditions().loss_prob, 0.0);
  EXPECT_GT(mesh.key_service()->session(0).totals().batches, 0u);
}

TEST(ClassicalImpairmentScenario, AnalyticMeshRecordsANoOp) {
  // An analytic-rate mesh simulates no classical channel; the action is
  // legal but must announce itself as a no-op on the timeline.
  MeshSimulation mesh(Topology::relay_ring(6), 7);
  Scenario script;
  script.at(kSecond, ClassicalImpairment{0, 10 * kMillisecond, 0.1, 0.1});
  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  runner.run(2 * kSecond);

  const auto& notes = runner.recorder().notes();
  const bool noted = std::any_of(
      notes.begin(), notes.end(), [](const TimelineNote& note) {
        return note.text.find("no-op: analytic mesh") != std::string::npos;
      });
  EXPECT_TRUE(noted);
}

TEST(ClassicalImpairmentScenario, ActionDescribesItself) {
  const ScenarioAction action =
      ClassicalImpairment{3, 20 * kMillisecond, 0.05, 0.01};
  EXPECT_STREQ(action_name(action), "ClassicalImpairment");
  const std::string text = describe(action);
  EXPECT_NE(text.find("3"), std::string::npos);
  EXPECT_NE(text.find("0.05"), std::string::npos);
}

}  // namespace
}  // namespace qkd::sim
