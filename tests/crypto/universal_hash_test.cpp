#include "src/crypto/universal_hash.hpp"

#include <gtest/gtest.h>

#include "tests/testing/seeded_rng.hpp"

#include "src/common/rng.hpp"

namespace qkd::crypto {
namespace {

TEST(ToeplitzHash, IsLinearInTheMessage) {
  // H(m1 ^ m2) == H(m1) ^ H(m2) — the defining property used by the
  // Toeplitz + one-time-pad construction.
  QKD_SEEDED_RNG(rng, 1);
  const unsigned tag_bits = 64;
  const std::size_t msg_bits = 256;
  const auto key = rng.next_bits(tag_bits + msg_bits - 1);
  const auto m1 = rng.next_bits(msg_bits);
  const auto m2 = rng.next_bits(msg_bits);
  const auto h1 = toeplitz_hash(key, m1, tag_bits);
  const auto h2 = toeplitz_hash(key, m2, tag_bits);
  const auto h12 = toeplitz_hash(key, m1 ^ m2, tag_bits);
  EXPECT_EQ(h12, h1 ^ h2);
}

TEST(ToeplitzHash, ZeroMessageHashesToZero) {
  QKD_SEEDED_RNG(rng, 2);
  const auto key = rng.next_bits(64 + 128 - 1);
  EXPECT_EQ(toeplitz_hash(key, qkd::BitVector(128), 64).popcount(), 0u);
}

TEST(ToeplitzHash, KeyTooShortThrows) {
  QKD_SEEDED_RNG(rng, 3);
  EXPECT_THROW(toeplitz_hash(rng.next_bits(100), rng.next_bits(100), 64),
               std::invalid_argument);
}

TEST(ToeplitzHash, CollisionRateNearTwoToMinusTag) {
  // For random keys, Pr[H(m1) == H(m2)] for fixed m1 != m2 is 2^-t.
  // With t = 8 and 2000 trials we expect ~8 collisions; accept generously.
  QKD_SEEDED_RNG(rng, 4);
  const unsigned tag_bits = 8;
  const std::size_t msg_bits = 64;
  const auto m1 = rng.next_bits(msg_bits);
  auto m2 = m1;
  m2.flip(10);
  int collisions = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const auto key = rng.next_bits(tag_bits + msg_bits - 1);
    collisions +=
        toeplitz_hash(key, m1, tag_bits) == toeplitz_hash(key, m2, tag_bits);
  }
  EXPECT_LT(collisions, 25);  // mean ~7.8, generous ceiling
}

TEST(PolyHash64, DeterministicAndKeySensitive) {
  const Bytes msg = {1, 2, 3, 4, 5};
  EXPECT_EQ(poly_hash64(42, msg), poly_hash64(42, msg));
  EXPECT_NE(poly_hash64(42, msg), poly_hash64(43, msg));
}

TEST(PolyHash64, LengthIsAuthenticated) {
  const Bytes a = {1, 2, 3, 0};
  const Bytes b = {1, 2, 3};
  EXPECT_NE(poly_hash64(7, a), poly_hash64(7, b));
}

TEST(WegmanCarter, TagVerifyRoundTrip) {
  QKD_SEEDED_RNG(rng, 5);
  WegmanCarterAuthenticator::Config cfg{.tag_bits = 64,
                                        .max_message_bits = 1024};
  const auto secret = rng.next_bits(64 + 1024 - 1 + 640);
  WegmanCarterAuthenticator alice(cfg, secret);
  WegmanCarterAuthenticator bob(cfg, secret);
  const Bytes msg = {'s', 'i', 'f', 't'};
  const auto tag = alice.tag(msg);
  ASSERT_TRUE(tag.has_value());
  EXPECT_TRUE(bob.verify(msg, *tag));
}

TEST(WegmanCarter, TamperedMessageRejected) {
  QKD_SEEDED_RNG(rng, 6);
  WegmanCarterAuthenticator::Config cfg{.tag_bits = 64,
                                        .max_message_bits = 1024};
  const auto secret = rng.next_bits(64 + 1024 - 1 + 640);
  WegmanCarterAuthenticator alice(cfg, secret);
  WegmanCarterAuthenticator bob(cfg, secret);
  Bytes msg = {'s', 'i', 'f', 't'};
  const auto tag = alice.tag(msg);
  ASSERT_TRUE(tag.has_value());
  msg[0] ^= 1;
  EXPECT_FALSE(bob.verify(msg, *tag));
}

TEST(WegmanCarter, PadExhaustionReturnsNullopt) {
  QKD_SEEDED_RNG(rng, 7);
  WegmanCarterAuthenticator::Config cfg{.tag_bits = 64,
                                        .max_message_bits = 256};
  // Exactly enough for the Toeplitz key + 2 tags of pad.
  const auto secret = rng.next_bits((64 + 256 - 1) + 128);
  WegmanCarterAuthenticator auth(cfg, secret);
  const Bytes msg = {1};
  EXPECT_TRUE(auth.tag(msg).has_value());
  EXPECT_TRUE(auth.tag(msg).has_value());
  EXPECT_FALSE(auth.tag(msg).has_value());  // exhausted: the DoS of Sec. 2
  EXPECT_EQ(auth.pad_bits_consumed(), 128u);
}

TEST(WegmanCarter, ReplenishRestoresTagging) {
  QKD_SEEDED_RNG(rng, 8);
  WegmanCarterAuthenticator::Config cfg{.tag_bits = 64,
                                        .max_message_bits = 256};
  const auto secret = rng.next_bits(64 + 256 - 1);  // zero pad bits
  WegmanCarterAuthenticator auth(cfg, secret);
  const Bytes msg = {9};
  EXPECT_FALSE(auth.tag(msg).has_value());
  auth.replenish(rng.next_bits(64));
  EXPECT_TRUE(auth.tag(msg).has_value());
}

TEST(WegmanCarter, TagsOfSameMessageDifferAcrossPads) {
  // Fresh pad per message: identical messages must not produce identical
  // tags, or Eve learns hash collisions.
  QKD_SEEDED_RNG(rng, 9);
  WegmanCarterAuthenticator::Config cfg{.tag_bits = 64,
                                        .max_message_bits = 256};
  const auto secret = rng.next_bits(64 + 256 - 1 + 1280);
  WegmanCarterAuthenticator auth(cfg, secret);
  const Bytes msg = {1, 2, 3};
  const auto t1 = auth.tag(msg);
  const auto t2 = auth.tag(msg);
  ASSERT_TRUE(t1 && t2);
  EXPECT_NE(*t1, *t2);
}

TEST(WegmanCarter, OversizeMessageThrows) {
  QKD_SEEDED_RNG(rng, 10);
  WegmanCarterAuthenticator::Config cfg{.tag_bits = 32,
                                        .max_message_bits = 64};
  const auto secret = rng.next_bits(32 + 64 - 1 + 320);
  WegmanCarterAuthenticator auth(cfg, secret);
  EXPECT_THROW(auth.tag(Bytes(9)), std::invalid_argument);
}

TEST(WegmanCarter, ShortInitialSecretThrows) {
  WegmanCarterAuthenticator::Config cfg{.tag_bits = 64,
                                        .max_message_bits = 1024};
  EXPECT_THROW(WegmanCarterAuthenticator(cfg, qkd::BitVector(100)),
               std::invalid_argument);
}

TEST(WegmanCarter, ForgeryProbabilityIsLow) {
  // An attacker without the pad cannot guess a 16-bit tag much better than
  // 2^-16; try 5000 random forgeries and expect ~0 successes.
  QKD_SEEDED_RNG(rng, 11);
  WegmanCarterAuthenticator::Config cfg{.tag_bits = 16,
                                        .max_message_bits = 64};
  const Bytes msg = {0x42};
  int forged = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const auto secret = rng.next_bits(16 + 64 - 1 + 16);
    WegmanCarterAuthenticator verifier(cfg, secret);
    const auto guess = rng.next_bits(16);
    forged += verifier.verify(msg, guess);
  }
  EXPECT_LE(forged, 1);
}

}  // namespace
}  // namespace qkd::crypto
