#include "src/crypto/lfsr.hpp"

#include <gtest/gtest.h>

namespace qkd::crypto {
namespace {

TEST(Lfsr32, DeterministicForSeed) {
  Lfsr32 a(0xdeadbeef), b(0xdeadbeef);
  for (int i = 0; i < 256; ++i) EXPECT_EQ(a.next_bit(), b.next_bit());
}

TEST(Lfsr32, DifferentSeedsGiveDifferentStreams) {
  Lfsr32 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 256; ++i) same += a.next_bit() == b.next_bit();
  EXPECT_LT(same, 200);
  EXPECT_GT(same, 56);
}

TEST(Lfsr32, ZeroSeedDoesNotLockUp) {
  Lfsr32 lfsr(0);
  const qkd::BitVector bits = lfsr.next_bits(256);
  EXPECT_GT(bits.popcount(), 0u);
  EXPECT_LT(bits.popcount(), 256u);
}

TEST(Lfsr32, StateNeverReachesZero) {
  Lfsr32 lfsr(0x12345678);
  for (int i = 0; i < 100000; ++i) {
    lfsr.next_bit();
    ASSERT_NE(lfsr.state(), 0u);
  }
}

TEST(Lfsr32, StreamIsBalancedOverLongRun) {
  Lfsr32 lfsr(0xace1);
  const qkd::BitVector bits = lfsr.next_bits(100000);
  const double ones = static_cast<double>(bits.popcount()) / bits.size();
  EXPECT_NEAR(ones, 0.5, 0.02);
}

TEST(Lfsr32, SubsetMaskMatchesStream) {
  // The subset mask both Cascade peers derive from an announced seed must be
  // exactly the LFSR output stream.
  const std::uint32_t seed = 0xfeedface;
  Lfsr32 lfsr(seed);
  const qkd::BitVector stream = lfsr.next_bits(500);
  EXPECT_EQ(Lfsr32::subset_mask(seed, 500), stream);
}

TEST(Lfsr32, SubsetMaskSelectsRoughlyHalf) {
  const qkd::BitVector mask = Lfsr32::subset_mask(12345, 10000);
  EXPECT_GT(mask.popcount(), 4500u);
  EXPECT_LT(mask.popcount(), 5500u);
}

TEST(Lfsr32, DistinctSeedsGiveDistinctMasks) {
  // 64 subsets per Cascade round must genuinely differ.
  const std::size_t n = 1000;
  std::vector<qkd::BitVector> masks;
  for (std::uint32_t s = 1; s <= 64; ++s)
    masks.push_back(Lfsr32::subset_mask(s * 0x9e3779b9u, n));
  for (std::size_t i = 0; i < masks.size(); ++i)
    for (std::size_t j = i + 1; j < masks.size(); ++j)
      EXPECT_NE(masks[i], masks[j]) << i << "," << j;
}

}  // namespace
}  // namespace qkd::crypto
