#include "src/crypto/gf2n.hpp"

#include <gtest/gtest.h>

#include "tests/testing/seeded_rng.hpp"

#include "src/common/rng.hpp"

namespace qkd::crypto {
namespace {

TEST(Clmul, SmallKnownProducts) {
  // (x+1)(x+1) = x^2+1 over GF(2).
  const auto a = qkd::BitVector::from_string("11");  // 1 + x
  const auto sq = clmul(a, a);
  EXPECT_EQ(sq.to_string(), "101");
  // (x^2+x+1)(x+1) = x^3 + 2x^2 + 2x + 1 = x^3+1 over GF(2).
  const auto b = qkd::BitVector::from_string("111");
  const auto p = clmul(b, a);
  EXPECT_EQ(p.to_string(), "1001");
}

TEST(Clmul, MultiplicationByOneIsIdentity) {
  QKD_SEEDED_RNG(rng, 5);
  const auto a = rng.next_bits(200);
  const auto one = qkd::BitVector::from_string("1");
  auto p = clmul(a, one);
  p.resize(a.size());
  EXPECT_EQ(p, a);
}

TEST(Clmul, Commutes) {
  QKD_SEEDED_RNG(rng, 6);
  const auto a = rng.next_bits(130);
  const auto b = rng.next_bits(77);
  EXPECT_EQ(clmul(a, b), clmul(b, a));
}

TEST(ReduceMod, KnownSmallReduction) {
  // x^3 mod (x^2 + x + 1) = x*(x^2) = x*(x+1) = x^2+x = (x+1)+x = 1.
  qkd::BitVector v(4);
  v.set(3, true);  // x^3
  reduce_mod(v, SparsePoly{{2, 1, 0}});
  EXPECT_EQ(v.to_string(), "10");  // wait: x^3 mod (x^2+x+1)
}

TEST(IsIrreducible, SmallPolynomials) {
  EXPECT_TRUE(is_irreducible(SparsePoly{{1, 0}}));       // x + 1
  EXPECT_TRUE(is_irreducible(SparsePoly{{2, 1, 0}}));    // x^2+x+1
  EXPECT_TRUE(is_irreducible(SparsePoly{{3, 1, 0}}));    // x^3+x+1
  EXPECT_TRUE(is_irreducible(SparsePoly{{4, 1, 0}}));    // x^4+x+1
  EXPECT_FALSE(is_irreducible(SparsePoly{{2, 0}}));      // x^2+1 = (x+1)^2
  EXPECT_FALSE(is_irreducible(SparsePoly{{4, 2, 0}}));   // (x^2+x+1)^2
  EXPECT_FALSE(is_irreducible(SparsePoly{{3, 1}}));      // no constant term
  EXPECT_TRUE(is_irreducible(SparsePoly{{8, 4, 3, 1, 0}}));  // AES field poly
}

TEST(IrreduciblePoly, ServesAllStackDegrees) {
  // Privacy amplification rounds n up to a multiple of 32 (paper, Sec. 5);
  // these are the degrees the QKD stack exercises. Every returned polynomial
  // must pass the irreducibility test — this also validates the built-in
  // table entries since wrong hints would be replaced by searched values.
  for (unsigned n : {32u, 64u, 96u, 128u, 160u, 192u, 224u, 256u, 384u, 512u,
                     1024u, 2048u}) {
    const SparsePoly p = irreducible_poly(n);
    EXPECT_EQ(p.degree(), n);
    EXPECT_LE(p.exponents.size(), 5u) << "not low-weight for n=" << n;
    EXPECT_TRUE(is_irreducible(p)) << "n=" << n;
  }
}

TEST(IrreduciblePoly, RejectsTrivialDegrees) {
  EXPECT_THROW(irreducible_poly(0), std::invalid_argument);
  EXPECT_THROW(irreducible_poly(1), std::invalid_argument);
}

TEST(Gf2Field, MultiplicativeIdentityAndZero) {
  const Gf2Field f(64);
  QKD_SEEDED_RNG(rng, 7);
  const auto a = rng.next_bits(64);
  const auto one = qkd::BitVector::from_uint64(1, 64);
  const auto zero = qkd::BitVector(64);
  EXPECT_EQ(f.multiply(a, one), a);
  EXPECT_EQ(f.multiply(a, zero), zero);
}

TEST(Gf2Field, MultiplicationAssociativeAndCommutative) {
  const Gf2Field f(96);
  QKD_SEEDED_RNG(rng, 8);
  for (int i = 0; i < 20; ++i) {
    const auto a = rng.next_bits(96);
    const auto b = rng.next_bits(96);
    const auto c = rng.next_bits(96);
    EXPECT_EQ(f.multiply(a, b), f.multiply(b, a));
    EXPECT_EQ(f.multiply(f.multiply(a, b), c), f.multiply(a, f.multiply(b, c)));
  }
}

TEST(Gf2Field, DistributesOverAddition) {
  const Gf2Field f(128);
  QKD_SEEDED_RNG(rng, 9);
  for (int i = 0; i < 20; ++i) {
    const auto a = rng.next_bits(128);
    const auto b = rng.next_bits(128);
    const auto c = rng.next_bits(128);
    const auto lhs = f.multiply(a, f.add(b, c));
    const auto rhs = f.add(f.multiply(a, b), f.multiply(a, c));
    EXPECT_EQ(lhs, rhs);
  }
}

TEST(Gf2Field, FrobeniusFixedField) {
  // In GF(2^n), a^(2^n) == a for every element (Frobenius has order n).
  const Gf2Field f(32);
  QKD_SEEDED_RNG(rng, 10);
  for (int i = 0; i < 10; ++i) {
    const auto a = rng.next_bits(32);
    EXPECT_EQ(f.pow2k(a, 32), a);
  }
}

TEST(Gf2Field, SquareMatchesSelfMultiply) {
  const Gf2Field f(160);
  QKD_SEEDED_RNG(rng, 11);
  const auto a = rng.next_bits(160);
  EXPECT_EQ(f.pow2k(a, 1), f.multiply(a, a));
}

TEST(Gf2Field, RejectsWrongDegreeModulus) {
  EXPECT_THROW(Gf2Field(32, SparsePoly{{16, 5, 3, 1, 0}}),
               std::invalid_argument);
}

TEST(Gf2Field, RejectsOversizeOperands) {
  const Gf2Field f(32);
  QKD_SEEDED_RNG(rng, 12);
  EXPECT_THROW(f.multiply(rng.next_bits(33), rng.next_bits(32)),
               std::invalid_argument);
}

TEST(Gf2Field, NonTrivialElementHasFullOrbitUnderFrobenius) {
  // x generates a nontrivial Frobenius orbit unless it lies in a subfield —
  // it cannot for a degree-32 field element equal to x.
  const Gf2Field f(32);
  qkd::BitVector x(32);
  x.set(1, true);
  EXPECT_NE(f.pow2k(x, 16), x);  // not fixed by the halfway Frobenius power
  EXPECT_EQ(f.pow2k(x, 32), x);
}

}  // namespace
}  // namespace qkd::crypto
