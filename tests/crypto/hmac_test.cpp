#include "src/crypto/hmac.hpp"

#include <gtest/gtest.h>

#include <string_view>

namespace qkd::crypto {
namespace {

Bytes ascii(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string mac_hex(const Sha1::Digest& d) {
  return to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// RFC 2202 test vectors for HMAC-SHA1.
TEST(HmacSha1, Rfc2202Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(mac_hex(hmac_sha1(key, ascii("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1, Rfc2202Case2) {
  EXPECT_EQ(
      mac_hex(hmac_sha1(ascii("Jefe"), ascii("what do ya want for nothing?"))),
      "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1, Rfc2202Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  EXPECT_EQ(mac_hex(hmac_sha1(key, data)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacSha1, Rfc2202Case6LongKey) {
  const Bytes key(80, 0xaa);
  EXPECT_EQ(mac_hex(hmac_sha1(
                key, ascii("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacSha1, KeySensitivity) {
  const Bytes k1(20, 0x01), k2(20, 0x02);
  const Bytes msg = ascii("same message");
  EXPECT_NE(hmac_sha1(k1, msg), hmac_sha1(k2, msg));
}

TEST(PrfPlus, ProducesRequestedLength) {
  const Bytes key = ascii("secret");
  const Bytes seed = ascii("seed");
  for (std::size_t len : {0u, 1u, 19u, 20u, 21u, 64u, 100u}) {
    EXPECT_EQ(prf_plus(key, seed, len).size(), len);
  }
}

TEST(PrfPlus, PrefixConsistency) {
  // prf_plus(k, s, 40) must begin with prf_plus(k, s, 20).
  const Bytes key = ascii("k");
  const Bytes seed = ascii("s");
  const Bytes a = prf_plus(key, seed, 20);
  const Bytes b = prf_plus(key, seed, 40);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST(PrfPlus, SeedSensitivity) {
  const Bytes key = ascii("k");
  EXPECT_NE(prf_plus(key, ascii("s1"), 20), prf_plus(key, ascii("s2"), 20));
}

TEST(ConstantTimeEqual, Basics) {
  const Bytes a = {1, 2, 3}, b = {1, 2, 3}, c = {1, 2, 4}, d = {1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
}

}  // namespace
}  // namespace qkd::crypto
