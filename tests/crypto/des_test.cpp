#include "src/crypto/des.hpp"

#include <gtest/gtest.h>

#include "tests/testing/seeded_rng.hpp"

#include "src/common/rng.hpp"

namespace qkd::crypto {
namespace {

TEST(Des, ClassicWorkedExample) {
  // The standard worked example (used in countless DES walkthroughs):
  // key 133457799BBCDFF1, plaintext 0123456789ABCDEF -> 85E813540F0AB405.
  const Des des(from_hex("133457799bbcdff1"));
  EXPECT_EQ(des.encrypt(0x0123456789ABCDEFULL), 0x85E813540F0AB405ULL);
  EXPECT_EQ(des.decrypt(0x85E813540F0AB405ULL), 0x0123456789ABCDEFULL);
}

TEST(Des, AllZeroKeyVector) {
  // Known vector: K = 00..00, P = 00..00 -> C = 8CA64DE9C1B123A7.
  const Des des(Bytes(8, 0));
  EXPECT_EQ(des.encrypt(0), 0x8CA64DE9C1B123A7ULL);
}

TEST(Des, RejectsBadKeySize) {
  EXPECT_THROW(Des(Bytes(7)), std::invalid_argument);
  EXPECT_THROW(Des(Bytes(9)), std::invalid_argument);
}

TEST(Des, RoundTripRandomBlocks) {
  QKD_SEEDED_RNG(rng, 555);
  Bytes key(8);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  const Des des(key);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t p = rng.next_u64();
    EXPECT_EQ(des.decrypt(des.encrypt(p)), p);
  }
}

TEST(TripleDes, DegeneratesToSingleDesWithEqualKeys) {
  const Bytes k8 = from_hex("133457799bbcdff1");
  Bytes k24;
  for (int i = 0; i < 3; ++i) k24.insert(k24.end(), k8.begin(), k8.end());
  const TripleDes tdes(k24);
  const Des des(k8);
  const std::uint64_t p = 0x0123456789ABCDEFULL;
  EXPECT_EQ(tdes.encrypt(p), des.encrypt(p));
}

TEST(TripleDes, RoundTripDistinctKeys) {
  QKD_SEEDED_RNG(rng, 777);
  Bytes key(24);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  const TripleDes tdes(key);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t p = rng.next_u64();
    EXPECT_EQ(tdes.decrypt(tdes.encrypt(p)), p);
  }
}

TEST(TripleDes, RejectsBadKeySize) {
  EXPECT_THROW(TripleDes(Bytes(16)), std::invalid_argument);
}

TEST(TripleDesCbc, RoundTrip) {
  QKD_SEEDED_RNG(rng, 888);
  Bytes key(24);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  const TripleDes tdes(key);
  const std::uint64_t iv = rng.next_u64();
  Bytes plain(64);
  for (auto& b : plain) b = static_cast<std::uint8_t>(rng.next_u64());
  const Bytes cipher = des3_cbc_encrypt(tdes, iv, plain);
  EXPECT_NE(cipher, plain);
  EXPECT_EQ(des3_cbc_decrypt(tdes, iv, cipher), plain);
}

TEST(TripleDesCbc, IvChangesCiphertext) {
  const TripleDes tdes(Bytes(24, 0x42));
  const Bytes plain(32, 0x11);
  EXPECT_NE(des3_cbc_encrypt(tdes, 0, plain), des3_cbc_encrypt(tdes, 1, plain));
}

TEST(TripleDesCbc, RejectsMisalignedInput) {
  const TripleDes tdes(Bytes(24, 0));
  EXPECT_THROW(des3_cbc_encrypt(tdes, 0, Bytes(9)), std::invalid_argument);
  EXPECT_THROW(des3_cbc_decrypt(tdes, 0, Bytes(15)), std::invalid_argument);
}

}  // namespace
}  // namespace qkd::crypto
