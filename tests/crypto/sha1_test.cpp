#include "src/crypto/sha1.hpp"

#include <gtest/gtest.h>

#include <string_view>

#include "src/common/bytes.hpp"

namespace qkd::crypto {
namespace {

Bytes ascii(std::string_view s) { return Bytes(s.begin(), s.end()); }

std::string digest_hex(const Sha1::Digest& d) {
  return to_hex(std::span<const std::uint8_t>(d.data(), d.size()));
}

// FIPS 180-1 / RFC 3174 test vectors.
TEST(Sha1, EmptyString) {
  EXPECT_EQ(digest_hex(Sha1::hash(ascii(""))),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(digest_hex(Sha1::hash(ascii("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(Sha1::hash(ascii(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 s;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) s.update(chunk);
  EXPECT_EQ(digest_hex(s.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, StreamingMatchesOneShot) {
  const Bytes data = ascii("The quick brown fox jumps over the lazy dog");
  Sha1 s;
  for (std::size_t i = 0; i < data.size(); ++i)
    s.update(std::span<const std::uint8_t>(&data[i], 1));
  EXPECT_EQ(digest_hex(s.finish()), digest_hex(Sha1::hash(data)));
}

TEST(Sha1, PaddingBoundaries) {
  // Lengths around the 55/56/63/64 padding boundaries must all work.
  for (std::size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 127u, 128u}) {
    const Bytes data(len, 0x5a);
    Sha1 a;
    a.update(data);
    const auto one = a.finish();
    Sha1 b;
    b.update(std::span<const std::uint8_t>(data.data(), len / 2));
    b.update(std::span<const std::uint8_t>(data.data() + len / 2,
                                           len - len / 2));
    EXPECT_EQ(one, b.finish()) << "len=" << len;
  }
}

TEST(Sha1, UseAfterFinishThrows) {
  Sha1 s;
  s.update(ascii("x"));
  (void)s.finish();
  EXPECT_THROW(s.update(ascii("y")), std::logic_error);
  EXPECT_THROW(s.finish(), std::logic_error);
}

}  // namespace
}  // namespace qkd::crypto
