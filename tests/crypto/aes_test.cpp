#include "src/crypto/aes.hpp"

#include <gtest/gtest.h>

#include "tests/testing/seeded_rng.hpp"

#include "src/common/rng.hpp"

namespace qkd::crypto {
namespace {

// FIPS 197 Appendix C vectors: plaintext 00112233445566778899aabbccddeeff.
const Bytes kPlain = from_hex("00112233445566778899aabbccddeeff");

TEST(Aes, Fips197Aes128) {
  const Aes aes(from_hex("000102030405060708090a0b0c0d0e0f"));
  Bytes out(16);
  aes.encrypt_block(kPlain.data(), out.data());
  EXPECT_EQ(to_hex(out), "69c4e0d86a7b0430d8cdb78070b4c55a");
  Bytes back(16);
  aes.decrypt_block(out.data(), back.data());
  EXPECT_EQ(back, kPlain);
}

TEST(Aes, Fips197Aes192) {
  const Aes aes(from_hex("000102030405060708090a0b0c0d0e0f1011121314151617"));
  Bytes out(16);
  aes.encrypt_block(kPlain.data(), out.data());
  EXPECT_EQ(to_hex(out), "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(Aes, Fips197Aes256) {
  const Aes aes(from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"));
  Bytes out(16);
  aes.encrypt_block(kPlain.data(), out.data());
  EXPECT_EQ(to_hex(out), "8ea2b7ca516745bfeafc49904b496089");
  Bytes back(16);
  aes.decrypt_block(out.data(), back.data());
  EXPECT_EQ(back, kPlain);
}

TEST(Aes, RejectsBadKeySizes) {
  EXPECT_THROW(Aes(Bytes(15)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(0)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(33)), std::invalid_argument);
}

TEST(Aes, EncryptDecryptRoundTripRandomKeys) {
  QKD_SEEDED_RNG(rng, 1234);
  for (std::size_t key_len : {16u, 24u, 32u}) {
    Bytes key(key_len);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
    const Aes aes(key);
    for (int i = 0; i < 50; ++i) {
      Aes::Block block;
      for (auto& b : block) b = static_cast<std::uint8_t>(rng.next_u64());
      EXPECT_EQ(aes.decrypt_block(aes.encrypt_block(block)), block);
    }
  }
}

TEST(AesCbc, NistSp800_38aVector) {
  // NIST SP 800-38A F.2.1 (CBC-AES128), first two blocks.
  const Aes aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Aes::Block iv;
  const Bytes iv_bytes = from_hex("000102030405060708090a0b0c0d0e0f");
  std::copy(iv_bytes.begin(), iv_bytes.end(), iv.begin());
  const Bytes plain = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51");
  const Bytes cipher = aes_cbc_encrypt(aes, iv, plain);
  EXPECT_EQ(to_hex(cipher),
            "7649abac8119b246cee98e9b12e9197d"
            "5086cb9b507219ee95db113a917678b2");
  EXPECT_EQ(aes_cbc_decrypt(aes, iv, cipher), plain);
}

TEST(AesCbc, RejectsPartialBlocks) {
  const Aes aes(Bytes(16, 0));
  Aes::Block iv{};
  EXPECT_THROW(aes_cbc_encrypt(aes, iv, Bytes(15)), std::invalid_argument);
  EXPECT_THROW(aes_cbc_decrypt(aes, iv, Bytes(17)), std::invalid_argument);
}

TEST(AesCbc, TamperedCiphertextChangesPlaintext) {
  QKD_SEEDED_RNG(rng, 99);
  Bytes key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next_u64());
  const Aes aes(key);
  Aes::Block iv{};
  Bytes plain(64, 0x41);
  Bytes cipher = aes_cbc_encrypt(aes, iv, plain);
  cipher[20] ^= 0x01;
  EXPECT_NE(aes_cbc_decrypt(aes, iv, cipher), plain);
}

TEST(AesCtr, NistSp800_38aVector) {
  // NIST SP 800-38A F.5.1 (CTR-AES128), first block.
  const Aes aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  Aes::Block ctr;
  const Bytes ctr_bytes = from_hex("f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff");
  std::copy(ctr_bytes.begin(), ctr_bytes.end(), ctr.begin());
  const Bytes plain = from_hex("6bc1bee22e409f96e93d7e117393172a");
  EXPECT_EQ(to_hex(aes_ctr_crypt(aes, ctr, plain)),
            "874d6191b620e3261bef6864990db6ce");
}

TEST(AesCtr, CryptIsItsOwnInverseAndHandlesPartialBlocks) {
  const Aes aes(Bytes(16, 0x7));
  Aes::Block ctr{};
  const Bytes data(37, 0x5a);  // deliberately not a multiple of 16
  const Bytes enc = aes_ctr_crypt(aes, ctr, data);
  EXPECT_EQ(aes_ctr_crypt(aes, ctr, enc), data);
  EXPECT_NE(enc, data);
}

}  // namespace
}  // namespace qkd::crypto
