#include "src/crypto/drbg.hpp"

#include <gtest/gtest.h>

namespace qkd::crypto {
namespace {

TEST(Drbg, DeterministicForSeed) {
  Drbg a(42u), b(42u);
  EXPECT_EQ(a.generate(100), b.generate(100));
}

TEST(Drbg, DifferentSeedsDiffer) {
  Drbg a(1u), b(2u);
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(Drbg, SequentialCallsDiffer) {
  Drbg d(7u);
  const Bytes first = d.generate(32);
  const Bytes second = d.generate(32);
  EXPECT_NE(first, second);
}

TEST(Drbg, GenerateBitsExactLength) {
  Drbg d(9u);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 1000u}) {
    EXPECT_EQ(d.generate_bits(n).size(), n);
  }
}

TEST(Drbg, ReseedChangesStream) {
  Drbg a(5u), b(5u);
  const Bytes extra = {1, 2, 3};
  b.reseed(extra);
  EXPECT_NE(a.generate(32), b.generate(32));
}

TEST(Drbg, OutputLooksBalanced) {
  Drbg d(11u);
  const qkd::BitVector bits = d.generate_bits(80000);
  const double ones = static_cast<double>(bits.popcount()) / bits.size();
  EXPECT_NEAR(ones, 0.5, 0.02);
}

TEST(Drbg, ByteSeedConstructor) {
  const Bytes seed = {0xde, 0xad};
  Drbg a(seed), b(seed);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u32(), 0u);  // vanishingly unlikely to be zero
}

}  // namespace
}  // namespace qkd::crypto
