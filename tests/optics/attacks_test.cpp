#include "src/optics/attacks.hpp"

#include <gtest/gtest.h>

#include "src/optics/link.hpp"

namespace qkd::optics {
namespace {

struct SiftStats {
  std::size_t sifted = 0;
  std::size_t errors = 0;
  std::size_t eve_known_sifted = 0;
  double qber() const {
    return sifted ? static_cast<double>(errors) / sifted : 0.0;
  }
};

SiftStats sift_with_eve(const FrameResult& frame) {
  SiftStats out;
  for (std::size_t i = 0; i < frame.bob.size(); ++i) {
    if (!frame.bob.detected.get(i)) continue;
    if (frame.alice.bases.get(i) != frame.bob.bases.get(i)) continue;
    ++out.sifted;
    if (frame.alice.values.get(i) != frame.bob.bits.get(i)) ++out.errors;
    if (frame.eve.known.get(i)) ++out.eve_known_sifted;
  }
  return out;
}

LinkParams clean_params() {
  LinkParams params;
  params.interferometer_visibility = 1.0;  // isolate attack-induced errors
  params.dark_count_prob = 0.0;
  return params;
}

TEST(InterceptResend, FullInterceptionInducesTwentyFivePercentQber) {
  WeakCoherentLink link(clean_params(), 21);
  InterceptResendAttack attack(1.0);
  SiftStats total;
  for (int i = 0; i < 4; ++i) {
    const SiftStats s = sift_with_eve(link.run_frame(400000, &attack));
    total.sifted += s.sifted;
    total.errors += s.errors;
  }
  ASSERT_GT(total.sifted, 1000u);
  EXPECT_NEAR(total.qber(), 0.25, 0.02);
}

TEST(InterceptResend, PartialInterceptionScalesLinearly) {
  WeakCoherentLink link(clean_params(), 23);
  InterceptResendAttack attack(0.4);
  SiftStats total;
  for (int i = 0; i < 4; ++i) {
    const SiftStats s = sift_with_eve(link.run_frame(400000, &attack));
    total.sifted += s.sifted;
    total.errors += s.errors;
  }
  EXPECT_NEAR(total.qber(), 0.4 * 0.25, 0.02);
}

TEST(InterceptResend, EveKnowsHalfOfInterceptedSiftedBits) {
  // Eve's basis matches Alice's half the time; only then is her stored
  // result the true bit.
  WeakCoherentLink link(clean_params(), 25);
  InterceptResendAttack attack(1.0);
  SiftStats total;
  for (int i = 0; i < 4; ++i) {
    const SiftStats s = sift_with_eve(link.run_frame(400000, &attack));
    total.sifted += s.sifted;
    total.eve_known_sifted += s.eve_known_sifted;
  }
  EXPECT_NEAR(
      static_cast<double>(total.eve_known_sifted) / total.sifted, 0.5, 0.05);
}

TEST(InterceptResend, RejectsBadFraction) {
  EXPECT_THROW(InterceptResendAttack(-0.1), std::invalid_argument);
  EXPECT_THROW(InterceptResendAttack(1.1), std::invalid_argument);
}

TEST(Beamsplit, TransparentButLeaky) {
  // A 30 % tap adds loss but no errors, and Eve learns bits.
  WeakCoherentLink tapped(clean_params(), 27);
  WeakCoherentLink clean(clean_params(), 27);
  BeamsplitAttack attack(0.3);
  SiftStats tapped_stats, clean_stats;
  for (int i = 0; i < 4; ++i) {
    const SiftStats s = sift_with_eve(tapped.run_frame(300000, &attack));
    tapped_stats.sifted += s.sifted;
    tapped_stats.errors += s.errors;
    tapped_stats.eve_known_sifted += s.eve_known_sifted;
    const SiftStats c = sift_with_eve(clean.run_frame(300000));
    clean_stats.sifted += c.sifted;
    clean_stats.errors += c.errors;
  }
  EXPECT_LT(tapped_stats.qber(), 0.01);            // no induced errors
  EXPECT_LT(tapped_stats.sifted, clean_stats.sifted);  // but extra loss
  EXPECT_GT(tapped_stats.eve_known_sifted, 0u);        // and leakage
}

TEST(Beamsplit, RejectsBadRatio) {
  EXPECT_THROW(BeamsplitAttack(1.5), std::invalid_argument);
}

TEST(Pns, SilentOnSinglePhotonPulses) {
  // With mu -> small, almost no multi-photon pulses: PNS gains ~nothing.
  LinkParams params = clean_params();
  params.mean_photon_number = 0.01;
  WeakCoherentLink link(params, 29);
  PhotonNumberSplittingAttack attack;
  const FrameResult frame = link.run_frame(200000, &attack);
  EXPECT_LT(frame.eve.photons_captured, 25u);  // ~ n * mu^2/2 = 10 expected
}

TEST(Pns, CapturesEveryMultiPhotonPulse) {
  LinkParams params = clean_params();
  params.mean_photon_number = 0.5;  // plenty of multi-photon pulses
  WeakCoherentLink link(params, 31);
  PhotonNumberSplittingAttack attack;
  const FrameResult frame = link.run_frame(100000, &attack);
  std::size_t multi = 0;
  for (auto c : frame.alice.photon_counts) multi += c >= 2;
  EXPECT_EQ(frame.eve.photons_captured, multi);
  EXPECT_EQ(frame.eve.known.popcount(), multi);
}

TEST(Pns, InducesNoErrors) {
  WeakCoherentLink link(clean_params(), 33);
  PhotonNumberSplittingAttack attack;
  SiftStats total;
  for (int i = 0; i < 4; ++i) {
    const SiftStats s = sift_with_eve(link.run_frame(300000, &attack));
    total.sifted += s.sifted;
    total.errors += s.errors;
  }
  ASSERT_GT(total.sifted, 500u);
  EXPECT_LT(total.qber(), 0.01);
}

TEST(ChannelCut, BlocksEverything) {
  WeakCoherentLink link(clean_params(), 35);
  ChannelCutAttack attack;
  link.run_frame(200000, &attack);
  EXPECT_EQ(link.stats().signal_clicks, 0u);
}

TEST(ChannelCut, DarkCountsStillFire) {
  // A cut channel looks like a dead link, not a quiet one: darks remain.
  LinkParams params;
  params.dark_count_prob = 1e-3;
  WeakCoherentLink link(params, 37);
  ChannelCutAttack attack;
  link.run_frame(100000, &attack);
  EXPECT_GT(link.stats().dark_only_clicks, 0u);
  EXPECT_EQ(link.stats().signal_clicks, 0u);
}

TEST(Composite, AppliesAllStages) {
  WeakCoherentLink link(clean_params(), 39);
  CompositeAttack attack;
  attack.add(std::make_unique<PhotonNumberSplittingAttack>());
  attack.add(std::make_unique<InterceptResendAttack>(0.5));
  SiftStats total;
  std::size_t captured = 0;
  for (int i = 0; i < 4; ++i) {
    const FrameResult frame = link.run_frame(300000, &attack);
    const SiftStats s = sift_with_eve(frame);
    total.sifted += s.sifted;
    total.errors += s.errors;
    captured += frame.eve.photons_captured;
  }
  EXPECT_NEAR(total.qber(), 0.125, 0.02);  // from the intercept half
  EXPECT_GT(captured, 0u);                 // from the PNS stage
}

}  // namespace
}  // namespace qkd::optics
