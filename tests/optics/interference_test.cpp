#include "src/optics/interference.hpp"

#include <gtest/gtest.h>

#include "src/optics/types.hpp"

namespace qkd::optics {
namespace {

TEST(PhaseEncoding, AlicePhaseTableMatchesPaper) {
  // Sec. 4: value 0 -> phase 0 (basis 0) or pi/2 (basis 1);
  //         value 1 -> phase pi (basis 0) or 3pi/2 (basis 1).
  EXPECT_EQ(alice_phase_quarter(Basis::kRectilinear, false), 0u);
  EXPECT_EQ(alice_phase_quarter(Basis::kDiagonal, false), 1u);
  EXPECT_EQ(alice_phase_quarter(Basis::kRectilinear, true), 2u);
  EXPECT_EQ(alice_phase_quarter(Basis::kDiagonal, true), 3u);
  EXPECT_EQ(bob_phase_quarter(Basis::kRectilinear), 0u);
  EXPECT_EQ(bob_phase_quarter(Basis::kDiagonal), 1u);
}

TEST(Interference, CompatibleBasesAreDeterministicAtFullVisibility) {
  // Fig. 7: delta = 0 -> constructive at D0 (bit 0); delta = pi -> D1.
  for (unsigned bob_q : {0u, 1u}) {
    const Basis bob_basis = bob_q ? Basis::kDiagonal : Basis::kRectilinear;
    for (bool value : {false, true}) {
      const unsigned alice_q = alice_phase_quarter(bob_basis, value);
      const double p1 = p_route_to_d1(alice_q, bob_q, 1.0);
      EXPECT_DOUBLE_EQ(p1, value ? 1.0 : 0.0)
          << "bob_q=" << bob_q << " value=" << value;
      EXPECT_TRUE(compatible_phases(alice_q, bob_q));
    }
  }
}

TEST(Interference, IncompatibleBasesAreFiftyFifty) {
  // "the photon strikes one of the two APDs at random" (Sec. 4).
  for (bool value : {false, true}) {
    const unsigned alice_rect = alice_phase_quarter(Basis::kRectilinear, value);
    const unsigned alice_diag = alice_phase_quarter(Basis::kDiagonal, value);
    EXPECT_DOUBLE_EQ(p_route_to_d1(alice_rect, 1u, 1.0), 0.5);
    EXPECT_DOUBLE_EQ(p_route_to_d1(alice_diag, 0u, 1.0), 0.5);
    EXPECT_FALSE(compatible_phases(alice_rect, 1u));
    EXPECT_FALSE(compatible_phases(alice_diag, 0u));
  }
}

TEST(Interference, FiniteVisibilityGivesErrorFloor) {
  // With V < 1 the "wrong" detector clicks with probability (1-V)/2.
  const double v = 0.9;
  const double p_wrong = p_route_to_d1(0u, 0u, v);  // delta = 0, D1 is wrong
  EXPECT_NEAR(p_wrong, (1.0 - v) / 2.0, 1e-12);
  const double p_right = p_route_to_d1(2u, 0u, v);  // delta = pi, D1 correct
  EXPECT_NEAR(p_right, (1.0 + v) / 2.0, 1e-12);
}

TEST(Interference, ZeroVisibilityDestroysInformation) {
  for (unsigned a = 0; a < 4; ++a)
    for (unsigned b = 0; b < 2; ++b)
      EXPECT_DOUBLE_EQ(p_route_to_d1(a, b, 0.0), 0.5);
}

TEST(Interference, ProbabilitiesAreComplementaryAcrossValueFlip) {
  // Flipping Alice's value flips delta by pi, exchanging the detectors.
  const double v = 0.83;
  for (unsigned bob_q : {0u, 1u}) {
    const Basis basis = bob_q ? Basis::kDiagonal : Basis::kRectilinear;
    const double p0 = p_route_to_d1(alice_phase_quarter(basis, false), bob_q, v);
    const double p1 = p_route_to_d1(alice_phase_quarter(basis, true), bob_q, v);
    EXPECT_NEAR(p0 + p1, 1.0, 1e-12);
  }
}

TEST(Interference, CosQuarterExactValues) {
  EXPECT_EQ(cos_quarter(0), 1);
  EXPECT_EQ(cos_quarter(1), 0);
  EXPECT_EQ(cos_quarter(2), -1);
  EXPECT_EQ(cos_quarter(3), 0);
  EXPECT_EQ(cos_quarter(4), 1);
  EXPECT_EQ(cos_quarter(7), 0);
}

}  // namespace
}  // namespace qkd::optics
