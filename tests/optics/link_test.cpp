#include "src/optics/link.hpp"

#include <gtest/gtest.h>

#include "src/optics/link_model.hpp"

namespace qkd::optics {
namespace {

// Counts sifted bits and errors in a frame (protocol-free reference sift).
struct SiftCount {
  std::size_t sifted = 0;
  std::size_t errors = 0;
  double qber() const {
    return sifted ? static_cast<double>(errors) / sifted : 0.0;
  }
};

SiftCount reference_sift(const FrameResult& frame) {
  SiftCount out;
  for (std::size_t i = 0; i < frame.bob.size(); ++i) {
    if (!frame.bob.detected.get(i)) continue;
    if (frame.alice.bases.get(i) != frame.bob.bases.get(i)) continue;
    ++out.sifted;
    if (frame.alice.values.get(i) != frame.bob.bits.get(i)) ++out.errors;
  }
  return out;
}

TEST(WeakCoherentLink, FrameShapesAreConsistent) {
  WeakCoherentLink link(LinkParams{}, 1);
  const FrameResult frame = link.run_frame(10000);
  EXPECT_EQ(frame.alice.size(), 10000u);
  EXPECT_EQ(frame.bob.size(), 10000u);
  EXPECT_EQ(frame.alice.photon_counts.size(), 10000u);
  EXPECT_EQ(frame.eve.attacked.size(), 10000u);
}

TEST(WeakCoherentLink, DeterministicForSeed) {
  WeakCoherentLink a(LinkParams{}, 77), b(LinkParams{}, 77);
  const FrameResult fa = a.run_frame(5000);
  const FrameResult fb = b.run_frame(5000);
  EXPECT_EQ(fa.alice.values, fb.alice.values);
  EXPECT_EQ(fa.bob.detected, fb.bob.detected);
  EXPECT_EQ(fa.bob.bits, fb.bob.bits);
}

TEST(WeakCoherentLink, PhotonStatisticsArePoisson) {
  LinkParams params;
  params.mean_photon_number = 0.1;
  WeakCoherentLink link(params, 3);
  const FrameResult frame = link.run_frame(200000);
  double mean = 0;
  std::size_t multi = 0;
  for (auto c : frame.alice.photon_counts) {
    mean += c;
    multi += c >= 2;
  }
  mean /= static_cast<double>(frame.alice.size());
  EXPECT_NEAR(mean, 0.1, 0.005);
  // Multi-photon fraction ~ 1 - e^-mu(1+mu) ~ 0.468 %.
  EXPECT_NEAR(static_cast<double>(multi) / frame.alice.size(), 0.00468, 0.001);
}

TEST(WeakCoherentLink, DetectionRateMatchesAnalyticModel) {
  const LinkParams params;  // paper operating point
  WeakCoherentLink link(params, 5);
  const LinkModel model(params);
  const std::size_t n = 1000000;
  link.run_frame(n);
  const double simulated =
      static_cast<double>(link.stats().detections) / static_cast<double>(n);
  const double predicted = model.p_single_click();
  EXPECT_NEAR(simulated, predicted, 0.15 * predicted + 1e-5);
}

TEST(WeakCoherentLink, QberAtPaperOperatingPointIsSixToEightPercent) {
  // Sec. 4: "approximately a 6-8% Quantum Bit Error Rate".
  WeakCoherentLink link(LinkParams{}, 7);
  SiftCount total;
  for (int i = 0; i < 5; ++i) {
    const FrameResult frame = link.run_frame(500000);
    const SiftCount c = reference_sift(frame);
    total.sifted += c.sifted;
    total.errors += c.errors;
  }
  ASSERT_GT(total.sifted, 1000u);
  EXPECT_GT(total.qber(), 0.05);
  EXPECT_LT(total.qber(), 0.09);
}

TEST(WeakCoherentLink, QberMatchesAnalyticPrediction) {
  LinkParams params;
  params.interferometer_visibility = 0.95;
  params.fiber_km = 25.0;
  WeakCoherentLink link(params, 9);
  const LinkModel model(params);
  SiftCount total;
  for (int i = 0; i < 5; ++i) {
    const SiftCount c = reference_sift(link.run_frame(500000));
    total.sifted += c.sifted;
    total.errors += c.errors;
  }
  EXPECT_NEAR(total.qber(), model.expected_qber(),
              0.25 * model.expected_qber() + 0.005);
}

TEST(WeakCoherentLink, BasisChoicesAreBalanced) {
  WeakCoherentLink link(LinkParams{}, 11);
  const FrameResult frame = link.run_frame(100000);
  const double alice_ones =
      static_cast<double>(frame.alice.bases.popcount()) / frame.alice.size();
  const double bob_ones =
      static_cast<double>(frame.bob.bases.popcount()) / frame.bob.size();
  EXPECT_NEAR(alice_ones, 0.5, 0.01);
  EXPECT_NEAR(bob_ones, 0.5, 0.01);
}

TEST(WeakCoherentLink, DarkCountsDominateAtExtremeRange) {
  LinkParams params;
  params.fiber_km = 150.0;  // far beyond the ~70 km limit
  WeakCoherentLink link(params, 13);
  link.run_frame(2000000);
  const auto& stats = link.stats();
  ASSERT_GT(stats.detections, 0u);
  EXPECT_GT(static_cast<double>(stats.dark_only_clicks) /
                static_cast<double>(stats.detections),
            0.8);
}

TEST(WeakCoherentLink, MisframingLosesSlots) {
  LinkParams params;
  params.misframe_prob = 0.5;
  WeakCoherentLink lossy(params, 15);
  WeakCoherentLink clean(LinkParams{}, 15);
  lossy.run_frame(500000);
  clean.run_frame(500000);
  EXPECT_NEAR(static_cast<double>(lossy.stats().misframed_slots), 250000, 2500);
  EXPECT_LT(lossy.stats().detections, clean.stats().detections);
}

TEST(WeakCoherentLink, AfterpulsingInflatesClickCount) {
  LinkParams noisy;
  noisy.afterpulse_prob = 0.5;
  noisy.dark_count_prob = 1e-3;  // enough triggers for afterpulses to matter
  LinkParams quiet = noisy;
  quiet.afterpulse_prob = 0.0;
  WeakCoherentLink a(noisy, 17), b(quiet, 17);
  a.run_frame(300000);
  b.run_frame(300000);
  EXPECT_GT(a.stats().detections + 2 * a.stats().double_clicks,
            b.stats().detections + 2 * b.stats().double_clicks);
}

TEST(WeakCoherentLink, RejectsInvalidParams) {
  LinkParams bad;
  bad.detector_efficiency = 1.5;
  EXPECT_THROW(WeakCoherentLink(bad, 1), std::invalid_argument);
  bad = LinkParams{};
  bad.interferometer_visibility = -0.1;
  EXPECT_THROW(WeakCoherentLink(bad, 1), std::invalid_argument);
  bad = LinkParams{};
  bad.mean_photon_number = -1;
  EXPECT_THROW(WeakCoherentLink(bad, 1), std::invalid_argument);
}

TEST(WeakCoherentLink, FrameDurationFollowsTriggerRate) {
  LinkParams params;
  params.pulse_rate_hz = 1e6;
  WeakCoherentLink link(params, 19);
  EXPECT_DOUBLE_EQ(link.frame_duration_s(1000000), 1.0);
  EXPECT_DOUBLE_EQ(link.frame_duration_s(500000), 0.5);
}

TEST(LinkModel, MaxRangeNearSeventyKm) {
  // Sec. 1: "distances up to about 70 km through fiber". The default
  // calibration must collapse (QBER > 11 %) in the 55-90 km window.
  const LinkModel model{LinkParams{}};
  const double range = model.max_range_km();
  EXPECT_GT(range, 55.0);
  EXPECT_LT(range, 90.0);
}

TEST(LinkModel, RangeIsZeroWhenFloorExceedsThreshold) {
  LinkParams params;
  params.interferometer_visibility = 0.5;  // 25 % intrinsic error floor
  EXPECT_DOUBLE_EQ(LinkModel(params).max_range_km(), 0.0);
}

TEST(LinkModel, PaperSiftingExample) {
  // Sec. 5 worked example: 1 % detection probability and zero noise means
  // 1 sifted bit per 200 transmitted: "A transmitted stream of 1,000 bits
  // therefore would boil down to about 5 sifted bits."
  LinkParams params;
  params.dark_count_prob = 0.0;
  params.interferometer_visibility = 1.0;
  // Tune losses so P(single click) is ~1 %.
  params.mean_photon_number = 0.1;
  params.fiber_km = 0.0;
  params.insertion_loss_db = 0.0;
  params.central_peak_fraction = 0.5;
  params.detector_efficiency = 0.2012;  // lambda ~ 0.01006 -> p ~ 1.0 %
  const LinkModel model(params);
  EXPECT_NEAR(model.p_single_click(), 0.01, 0.0005);
  EXPECT_NEAR(model.sift_fraction() * 1000.0, 5.0, 0.3);  // ~5 per 1000
}

TEST(LinkModel, SiftedRateScalesWithPulseRate) {
  LinkParams params;
  const LinkModel at_1mhz(params);
  params.pulse_rate_hz = 5e6;  // the hardware's 5 MHz max trigger rate
  const LinkModel at_5mhz(params);
  EXPECT_NEAR(at_5mhz.sifted_rate_bps() / at_1mhz.sifted_rate_bps(), 5.0,
              1e-9);
}

TEST(LinkModel, QberRisesMonotonicallyWithDistance) {
  LinkParams params;
  double prev = 0.0;
  for (double km : {0.0, 10.0, 30.0, 50.0, 70.0, 90.0}) {
    params.fiber_km = km;
    const double q = LinkModel(params).expected_qber();
    EXPECT_GE(q, prev) << km;
    prev = q;
  }
  EXPECT_GT(prev, 0.11);  // beyond range at 90 km
}

}  // namespace
}  // namespace qkd::optics
