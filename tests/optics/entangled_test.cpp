#include "src/optics/entangled.hpp"

#include <gtest/gtest.h>

namespace qkd::optics {
namespace {

struct SiftCount {
  std::size_t sifted = 0;
  std::size_t errors = 0;
  double qber() const {
    return sifted ? static_cast<double>(errors) / sifted : 0.0;
  }
};

SiftCount reference_sift(const FrameResult& frame) {
  SiftCount out;
  for (std::size_t i = 0; i < frame.bob.size(); ++i) {
    if (!frame.bob.detected.get(i)) continue;
    if (frame.alice.bases.get(i) != frame.bob.bases.get(i)) continue;
    ++out.sifted;
    if (frame.alice.values.get(i) != frame.bob.bits.get(i)) ++out.errors;
  }
  return out;
}

TEST(EntangledLink, ProducesCompatibleFrames) {
  EntangledLink link(EntangledParams{}, 1);
  const FrameResult frame = link.run_frame(100000);
  EXPECT_EQ(frame.alice.size(), 100000u);
  EXPECT_EQ(frame.bob.size(), 100000u);
  EXPECT_GT(frame.bob.detected.popcount(), 0u);
}

TEST(EntangledLink, DeterministicForSeed) {
  EntangledLink a(EntangledParams{}, 9), b(EntangledParams{}, 9);
  const FrameResult fa = a.run_frame(50000);
  const FrameResult fb = b.run_frame(50000);
  EXPECT_EQ(fa.bob.detected, fb.bob.detected);
  EXPECT_EQ(fa.bob.bits, fb.bob.bits);
}

TEST(EntangledLink, MatchedBasesAreCorrelated) {
  EntangledParams params;
  params.visibility = 1.0;
  params.double_pair_probability = 0.0;
  params.dark_count_prob = 0.0;
  EntangledLink link(params, 3);
  const SiftCount count = reference_sift(link.run_frame(500000));
  ASSERT_GT(count.sifted, 200u);
  EXPECT_LT(count.qber(), 0.01);  // perfect correlation
}

TEST(EntangledLink, VisibilitySetsErrorFloor) {
  EntangledParams params;
  params.visibility = 0.90;
  params.double_pair_probability = 0.0;
  params.dark_count_prob = 0.0;
  EntangledLink link(params, 5);
  SiftCount total;
  for (int i = 0; i < 4; ++i) {
    const SiftCount c = reference_sift(link.run_frame(500000));
    total.sifted += c.sifted;
    total.errors += c.errors;
  }
  EXPECT_NEAR(total.qber(), 0.05, 0.015);
}

TEST(EntangledLink, QberMatchesAnalyticModel) {
  const EntangledParams params;
  EntangledLink link(params, 7);
  const EntangledModel model(params);
  SiftCount total;
  for (int i = 0; i < 4; ++i) {
    const SiftCount c = reference_sift(link.run_frame(500000));
    total.sifted += c.sifted;
    total.errors += c.errors;
  }
  EXPECT_NEAR(total.qber(), model.expected_qber(),
              0.3 * model.expected_qber() + 0.005);
}

TEST(EntangledLink, CoincidenceRateMatchesModel) {
  const EntangledParams params;
  EntangledLink link(params, 11);
  const EntangledModel model(params);
  const std::size_t slots = 1000000;
  link.run_frame(slots);
  const double measured =
      static_cast<double>(link.stats().coincidences) / slots;
  EXPECT_NEAR(measured, model.coincidence_prob(),
              0.15 * model.coincidence_prob());
}

TEST(EntangledLink, DoublePairsAreTheOnlyEveLeak) {
  EntangledParams params;
  params.double_pair_probability = 0.01;
  EntangledLink link(params, 13);
  const FrameResult frame = link.run_frame(500000);
  EXPECT_EQ(frame.eve.known.popcount(), link.stats().double_pairs);
  // Leakage scale: per EMITTED double pair (which is ~ received-bit scaled),
  // not per transmitted slot — the Sec. 6 distinction favoring this link.
  EXPECT_LT(frame.eve.known.popcount(), frame.alice.size() / 50);
}

TEST(EntangledLink, RejectsBadParams) {
  EntangledParams bad;
  bad.pair_probability = 1.5;
  EXPECT_THROW(EntangledLink(bad, 1), std::invalid_argument);
  bad = EntangledParams{};
  bad.visibility = -0.1;
  EXPECT_THROW(EntangledLink(bad, 1), std::invalid_argument);
}

TEST(EntangledModel, SiftedRateScalesWithPump) {
  EntangledParams params;
  const double base = EntangledModel(params).sifted_rate_bps();
  params.pair_probability *= 2.0;
  EXPECT_NEAR(EntangledModel(params).sifted_rate_bps(), 2.0 * base, 1e-9);
}

}  // namespace
}  // namespace qkd::optics
