// WorkerPool: the shared worker pool behind LinkKeyService distillation and
// ShardedScheduler shard execution — inline single-lane path, index
// coverage, caller participation, exception propagation, nested-call
// fallback, and result-publication visibility.
#include "src/common/worker_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

namespace qkd::common {
namespace {

TEST(WorkerPool, SingleLaneRunsInlineInAscendingIndexOrder) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.lanes(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(8, [&](std::size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 8u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(WorkerPool, CountOfOneRunsInlineEvenWithThreads) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.lanes(), 4u);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.parallel_for(1, [&](std::size_t) { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(WorkerPool, EveryIndexRunsExactlyOnce) {
  WorkerPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(WorkerPool, ResultsWrittenByTasksAreVisibleAfterReturn) {
  WorkerPool pool(4);
  // Plain (non-atomic) writes: parallel_for's completion barrier must
  // publish them to the caller.
  std::vector<std::size_t> squares(512, 0);
  pool.parallel_for(squares.size(),
                    [&](std::size_t i) { squares[i] = i * i; });
  for (std::size_t i = 0; i < squares.size(); ++i)
    ASSERT_EQ(squares[i], i * i);
}

TEST(WorkerPool, FirstExceptionIsRethrownAfterAllIndicesSettle) {
  WorkerPool pool(3);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          ran.fetch_add(1);
                          if (i == 7) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // Every index was claimed (a throw skips none of the others).
  EXPECT_EQ(ran.load(), 64);
  // The pool survives for the next batch.
  std::atomic<int> again{0};
  pool.parallel_for(16, [&](std::size_t) { again.fetch_add(1); });
  EXPECT_EQ(again.load(), 16);
}

TEST(WorkerPool, NestedParallelForRunsInline) {
  WorkerPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](std::size_t) {
    // A task that re-enters the pool must not deadlock: the nested call
    // runs inline on the same lane.
    pool.parallel_for(8, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(WorkerPool, ZeroCountIsANoOp) {
  WorkerPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(WorkerPool, DefaultLanesIsAtLeastOne) {
  EXPECT_GE(WorkerPool::default_lanes(), 1u);
  EXPECT_LE(WorkerPool::default_lanes(), 8u);
}

}  // namespace
}  // namespace qkd::common
