#include "src/common/bytes.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qkd {
namespace {

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
  EXPECT_EQ(from_hex("0001ABFF"), data);
}

TEST(Hex, RejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(ByteWriter, BigEndianOrder) {
  Bytes out;
  put_u16(out, 0x0102);
  put_u32(out, 0x03040506);
  put_u64(out, 0x0708090a0b0c0d0eULL);
  EXPECT_EQ(to_hex(out), "0102030405060708090a0b0c0d0e");
}

TEST(ByteReader, ReadsBackWhatWriterWrote) {
  Bytes out;
  put_u8(out, 0x7f);
  put_u16(out, 0xbeef);
  put_u32(out, 0xdeadbeef);
  put_u64(out, 0x0123456789abcdefULL);
  ByteReader r(out);
  EXPECT_EQ(r.u8(), 0x7f);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

TEST(ByteReader, UnderrunThrows) {
  Bytes out;
  put_u16(out, 1);
  ByteReader r(out);
  EXPECT_THROW(r.u32(), std::out_of_range);
}

TEST(Varint, RoundTripsBoundaryValues) {
  for (std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, 0xffffffffULL,
        0xffffffffffffffffULL}) {
    Bytes out;
    put_varint(out, v);
    ByteReader r(out);
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Varint, SmallValuesAreOneByte) {
  Bytes out;
  put_varint(out, 100);
  EXPECT_EQ(out.size(), 1u);
}

TEST(ByteReader, BytesExtractsExactSpan) {
  Bytes out = {1, 2, 3, 4, 5};
  ByteReader r(out);
  EXPECT_EQ(r.bytes(2), (Bytes{1, 2}));
  EXPECT_EQ(r.remaining(), 3u);
  EXPECT_THROW(r.bytes(4), std::out_of_range);
}

}  // namespace
}  // namespace qkd
