#include "src/common/bitvector.hpp"

#include <gtest/gtest.h>

#include "tests/testing/seeded_rng.hpp"

#include <stdexcept>

#include "src/common/rng.hpp"

namespace qkd {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(BitVector, InitializerListOrdersBitsLsbFirst) {
  BitVector v{1, 0, 1, 1};
  EXPECT_EQ(v.size(), 4u);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(1));
  EXPECT_TRUE(v.get(2));
  EXPECT_TRUE(v.get(3));
  EXPECT_EQ(v.to_uint64(), 0b1101u);
}

TEST(BitVector, FromStringRoundTrips) {
  const std::string s = "011010001111";
  EXPECT_EQ(BitVector::from_string(s).to_string(), s);
}

TEST(BitVector, FromStringRejectsGarbage) {
  EXPECT_THROW(BitVector::from_string("01x"), std::invalid_argument);
}

TEST(BitVector, FromUint64MasksHighBits) {
  const BitVector v = BitVector::from_uint64(0xff, 4);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.to_uint64(), 0xfu);
}

TEST(BitVector, FromBytesLsbFirstWithinByte) {
  const std::uint8_t data[] = {0x01, 0x80};
  const BitVector v = BitVector::from_bytes(data);
  EXPECT_EQ(v.size(), 16u);
  EXPECT_TRUE(v.get(0));
  EXPECT_FALSE(v.get(7));
  EXPECT_FALSE(v.get(8));
  EXPECT_TRUE(v.get(15));
}

TEST(BitVector, ToBytesRoundTrips) {
  QKD_SEEDED_RNG(rng, 7);
  const BitVector v = rng.next_bits(128);
  EXPECT_EQ(BitVector::from_bytes(v.to_bytes()), v);
}

TEST(BitVector, SetGetFlipAcrossWordBoundary) {
  BitVector v(130);
  v.set(63, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  v.flip(64);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVector, OutOfRangeAccessThrows) {
  BitVector v(8);
  EXPECT_THROW(v.get(8), std::out_of_range);
  EXPECT_THROW(v.set(8, true), std::out_of_range);
  EXPECT_THROW(v.flip(100), std::out_of_range);
}

TEST(BitVector, PushBackGrows) {
  BitVector v;
  for (int i = 0; i < 100; ++i) v.push_back(i % 3 == 0);
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v.get(i), i % 3 == 0) << i;
}

TEST(BitVector, AppendAlignedAndUnaligned) {
  QKD_SEEDED_RNG(rng, 11);
  for (std::size_t left : {0u, 1u, 63u, 64u, 65u, 128u}) {
    const BitVector a = rng.next_bits(left);
    const BitVector b = rng.next_bits(97);
    BitVector joined = a;
    joined.append(b);
    ASSERT_EQ(joined.size(), left + 97);
    for (std::size_t i = 0; i < left; ++i) EXPECT_EQ(joined.get(i), a.get(i));
    for (std::size_t i = 0; i < 97; ++i)
      EXPECT_EQ(joined.get(left + i), b.get(i));
  }
}

TEST(BitVector, SliceMatchesBitwiseExtraction) {
  QKD_SEEDED_RNG(rng, 13);
  const BitVector v = rng.next_bits(300);
  for (std::size_t begin : {0u, 1u, 63u, 64u, 65u, 130u}) {
    const BitVector s = v.slice(begin, 100);
    for (std::size_t i = 0; i < 100; ++i)
      EXPECT_EQ(s.get(i), v.get(begin + i)) << begin << "+" << i;
  }
  EXPECT_THROW(v.slice(250, 100), std::out_of_range);
}

TEST(BitVector, ParityAndPopcount) {
  BitVector v(200);
  EXPECT_FALSE(v.parity());
  v.set(3, true);
  EXPECT_TRUE(v.parity());
  v.set(199, true);
  EXPECT_FALSE(v.parity());
  EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVector, MaskedParityCountsIntersection) {
  BitVector v = BitVector::from_string("110100");
  BitVector mask = BitVector::from_string("101010");
  // Intersection = positions {0, 3(off), ...}: v&mask = 1,0,0,1? v=1,1,0,1,0,0
  // mask selects 0,2,4 -> bits 1,0,0 -> parity 1.
  EXPECT_TRUE(v.masked_parity(mask));
  EXPECT_THROW(v.masked_parity(BitVector(5)), std::invalid_argument);
}

TEST(BitVector, MaskedRangeParityMatchesBruteForce) {
  QKD_SEEDED_RNG(rng, 17);
  const BitVector v = rng.next_bits(257);
  const BitVector mask = rng.next_bits(257);
  for (std::size_t begin : {0u, 5u, 64u, 100u}) {
    for (std::size_t end : std::vector<std::size_t>{begin, begin + 1, 128, 256, 257}) {
      if (end < begin || end > 257) continue;
      bool expected = false;
      for (std::size_t i = begin; i < end; ++i)
        expected ^= v.get(i) && mask.get(i);
      EXPECT_EQ(v.masked_range_parity(mask, begin, end), expected)
          << begin << ".." << end;
    }
  }
}

TEST(BitVector, XorAndHammingDistance) {
  QKD_SEEDED_RNG(rng, 19);
  const BitVector a = rng.next_bits(500);
  BitVector b = a;
  b.flip(0);
  b.flip(255);
  b.flip(499);
  EXPECT_EQ(a.hamming_distance(b), 3u);
  const BitVector x = a ^ b;
  EXPECT_EQ(x.popcount(), 3u);
}

TEST(BitVector, ResizeShrinkClearsTailBits) {
  BitVector v(100);
  for (std::size_t i = 0; i < 100; ++i) v.set(i, true);
  v.resize(70);
  EXPECT_EQ(v.size(), 70u);
  EXPECT_EQ(v.popcount(), 70u);
  v.resize(100);
  // Re-grown bits must be zero.
  EXPECT_EQ(v.popcount(), 70u);
}

TEST(BitVector, EqualityIsValueBased) {
  BitVector a = BitVector::from_string("1010");
  BitVector b = BitVector::from_string("1010");
  BitVector c = BitVector::from_string("1011");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == BitVector::from_string("10100"));
}

}  // namespace
}  // namespace qkd
