// Logger: thread-safety of the global sink (set_sink racing concurrent
// QKD_LOG statements — the regression the mutex fixed), sim-time stamping
// when a SimClock is registered, and the atomic level gate.
#include "src/common/logging.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace qkd {
namespace {

/// Restores the global logger to a quiet state when a test exits (the
/// logger is process-global; leave nothing pointed at stack frames).
struct LoggerGuard {
  ~LoggerGuard() {
    Logger& logger = Logger::instance();
    logger.set_clock(nullptr);
    logger.set_sink({});
    logger.set_level(LogLevel::kWarning);
  }
};

TEST(Logger, SinkSwapRacingConcurrentLogStatementsIsSafe) {
  LoggerGuard guard;
  Logger& logger = Logger::instance();
  logger.set_level(LogLevel::kDebug);
  // Shared by every sink generation, so a swapped-out sink invoked
  // mid-replacement still writes somewhere valid.
  auto delivered = std::make_shared<std::atomic<std::uint64_t>>(0);
  logger.set_sink([delivered](LogLevel, const std::string& message) {
    delivered->fetch_add(message.size());
  });

  std::atomic<int> finished{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t)
    writers.emplace_back([&finished] {
      for (int i = 0; i < 2000; ++i) QKD_LOG(kInfo) << "worker message";
      finished.fetch_add(1);
    });
  // The race under test: replacing the std::function while four threads
  // are inside log(). Pre-mutex this tore the function object (TSan
  // flagged it; ASan saw use-after-free under enough pressure). Keep
  // swapping until every writer has finished logging.
  while (finished.load(std::memory_order_relaxed) < 4)
    logger.set_sink([delivered](LogLevel, const std::string& message) {
      delivered->fetch_add(message.size());
    });
  for (auto& writer : writers) writer.join();
  EXPECT_GT(delivered->load(), 0u);
}

TEST(Logger, RegisteredSimClockStampsMessagesWithSimTime) {
  LoggerGuard guard;
  Logger& logger = Logger::instance();
  logger.set_level(LogLevel::kDebug);
  std::vector<std::string> lines;
  logger.set_sink(
      [&lines](LogLevel, const std::string& message) { lines.push_back(message); });

  SimClock clock;
  clock.advance(seconds_to_sim(1.5));
  logger.set_clock(&clock);
  QKD_LOG(kInfo) << "stamped";
  clock.advance(250 * kMillisecond);
  QKD_LOG(kInfo) << "later";
  logger.set_clock(nullptr);
  QKD_LOG(kInfo) << "plain";

  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "[t=1.500000s] stamped");
  EXPECT_EQ(lines[1], "[t=1.750000s] later");
  EXPECT_EQ(lines[2], "plain");
}

TEST(Logger, LevelGateFiltersBelowThresholdAndIsReadableConcurrently) {
  LoggerGuard guard;
  Logger& logger = Logger::instance();
  std::atomic<int> messages{0};
  logger.set_sink([&messages](LogLevel, const std::string&) { ++messages; });

  logger.set_level(LogLevel::kWarning);
  QKD_LOG(kDebug) << "suppressed";
  QKD_LOG(kInfo) << "suppressed";
  QKD_LOG(kWarning) << "emitted";
  EXPECT_EQ(messages.load(), 1);

  // Flipping the level while another thread logs is a pair of relaxed
  // atomic ops — no lock on the fast path, no torn reads.
  std::thread flipper([&logger] {
    for (int i = 0; i < 1000; ++i)
      logger.set_level(i % 2 == 0 ? LogLevel::kDebug : LogLevel::kError);
  });
  for (int i = 0; i < 1000; ++i) QKD_LOG(kInfo) << "maybe";
  flipper.join();
}

TEST(Logger, ParseLogLevelAcceptsEveryNameCaseInsensitively) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarning);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarning);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("TRACE"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("WARN"), LogLevel::kWarning);
  // The QKD_LOG_LEVEL contract: anything unparseable keeps the default
  // rather than guessing.
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("2"), std::nullopt);
  EXPECT_EQ(parse_log_level("info "), std::nullopt);
}

TEST(Logger, TraceIsTheFinestLevelAndFiltersLikeTheRest) {
  LoggerGuard guard;
  Logger& logger = Logger::instance();
  std::vector<LogLevel> seen;
  logger.set_sink(
      [&seen](LogLevel level, const std::string&) { seen.push_back(level); });

  logger.set_level(LogLevel::kTrace);
  QKD_LOG(kTrace) << "finest";
  QKD_LOG(kDebug) << "fine";
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], LogLevel::kTrace);
  EXPECT_EQ(std::string(log_level_name(LogLevel::kTrace)), "TRACE");

  seen.clear();
  logger.set_level(LogLevel::kDebug);
  QKD_LOG(kTrace) << "suppressed";
  QKD_LOG(kDebug) << "emitted";
  EXPECT_EQ(seen.size(), 1u);
}

}  // namespace
}  // namespace qkd
