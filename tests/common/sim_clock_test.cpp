// SimClock strictness (time never runs backwards) and the shared
// seconds->SimTime stepping helper.
#include "src/common/sim_clock.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace qkd {
namespace {

TEST(SimClock, AdvancesAndReportsSeconds) {
  SimClock clock;
  EXPECT_EQ(clock.now(), 0);
  clock.advance(3 * kSecond);
  clock.advance_to(5 * kSecond);
  EXPECT_EQ(clock.now(), 5 * kSecond);
  EXPECT_DOUBLE_EQ(clock.seconds(), 5.0);
}

TEST(SimClock, NegativeAdvanceThrows) {
  SimClock clock;
  clock.advance(kSecond);
  EXPECT_THROW(clock.advance(-1), std::invalid_argument);
  EXPECT_EQ(clock.now(), kSecond) << "a rejected advance must not move time";
}

TEST(SimClock, AdvanceToPastThrows) {
  SimClock clock;
  clock.advance(kSecond);
  EXPECT_THROW(clock.advance_to(kSecond - 1), std::invalid_argument);
  EXPECT_EQ(clock.now(), kSecond);
  // Equal time is a legal no-op (schedulers advance_to the current instant).
  clock.advance_to(kSecond);
  EXPECT_EQ(clock.now(), kSecond);
}

TEST(SimClock, SecondsConversionRoundTripsAndRejectsNegative) {
  EXPECT_EQ(seconds_to_sim(1.5), kSecond + 500 * kMillisecond);
  EXPECT_EQ(seconds_to_sim(0.0), 0);
  EXPECT_DOUBLE_EQ(sim_to_seconds(250 * kMillisecond), 0.25);
  EXPECT_THROW(seconds_to_sim(-0.1), std::invalid_argument);
}

TEST(SimClock, CeilConversionLandsWhereTheSecondsPredicateHolds) {
  // 1/3 s truncates to 333'333'333 ns, where sim_to_seconds(t) >= 1/3 is
  // still false — a deadline there wakes one tick early and finds its
  // predicate not yet true. The ceiling conversion lands on the first tick
  // where it holds; exactly representable durations are untouched.
  const double third = 1.0 / 3.0;
  EXPECT_LT(sim_to_seconds(seconds_to_sim(third)), third);
  EXPECT_GE(sim_to_seconds(seconds_to_sim_ceil(third)), third);
  EXPECT_EQ(seconds_to_sim_ceil(third), seconds_to_sim(third) + 1);
  EXPECT_EQ(seconds_to_sim_ceil(2.0), 2 * kSecond);
  EXPECT_EQ(seconds_to_sim_ceil(0.5), 500 * kMillisecond);
}

TEST(AdvanceClockStepped, SlicesExactlyAndReportsSliceWidths) {
  SimClock clock;
  std::vector<double> slices;
  advance_clock_stepped(clock, 0.25, 100 * kMillisecond,
                        [&](double dt) { slices.push_back(dt); });
  EXPECT_EQ(clock.now(), 250 * kMillisecond);
  ASSERT_EQ(slices.size(), 3u);  // 100 + 100 + 50 ms
  EXPECT_DOUBLE_EQ(slices[0], 0.1);
  EXPECT_DOUBLE_EQ(slices[1], 0.1);
  EXPECT_DOUBLE_EQ(slices[2], 0.05);
}

TEST(AdvanceClockStepped, ZeroDurationIsANoOpAndNegativeThrows) {
  SimClock clock;
  int calls = 0;
  advance_clock_stepped(clock, 0.0, kSecond, [&](double) { ++calls; });
  EXPECT_EQ(calls, 0);
  EXPECT_EQ(clock.now(), 0);
  EXPECT_THROW(
      advance_clock_stepped(clock, -1.0, kSecond, [&](double) { ++calls; }),
      std::invalid_argument);
  EXPECT_THROW(advance_clock_stepped(clock, 1.0, 0, [&](double) { ++calls; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace qkd
