#include "src/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace qkd {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsIndependent) {
  Rng parent(7);
  Rng child = parent.fork();
  // The child must not replay the parent's stream.
  Rng parent2(7);
  parent2.fork();
  EXPECT_EQ(parent.next_u64(), parent2.next_u64());
  int same = 0;
  Rng child_copy = child;
  for (int i = 0; i < 64; ++i) same += parent.next_u64() == child_copy.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_THROW(rng.next_below(0), std::invalid_argument);
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(9);
  int counts[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - 600);
    EXPECT_LT(c, n / 10 + 600);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  const double p = 0.3;
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(p);
  EXPECT_NEAR(static_cast<double>(hits) / n, p, 0.01);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
}

TEST(Rng, PoissonMeanAndVarianceMatch) {
  Rng rng(17);
  // QKD regime: mu = 0.1 photons/pulse.
  for (double mu : {0.1, 1.0, 5.0}) {
    const int n = 200000;
    double sum = 0, sum_sq = 0;
    for (int i = 0; i < n; ++i) {
      const double k = rng.next_poisson(mu);
      sum += k;
      sum_sq += k * k;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, mu, 0.05 * mu + 0.01) << "mu=" << mu;
    EXPECT_NEAR(var, mu, 0.1 * mu + 0.02) << "mu=" << mu;
  }
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(19);
  EXPECT_EQ(rng.next_poisson(0.0), 0u);
  EXPECT_THROW(rng.next_poisson(-1.0), std::invalid_argument);
}

TEST(Rng, PoissonMultiPhotonFractionMatchesTheory) {
  // P(N >= 2 | mu = 0.1) = 1 - e^-0.1 (1 + 0.1) ~= 0.00467 — the multi-photon
  // fraction that drives the PNS attack surface in the entropy estimate.
  Rng rng(23);
  const double mu = 0.1;
  const int n = 500000;
  int multi = 0;
  for (int i = 0; i < n; ++i) multi += rng.next_poisson(mu) >= 2;
  const double expected = 1.0 - std::exp(-mu) * (1.0 + mu);
  EXPECT_NEAR(static_cast<double>(multi) / n, expected, 0.0006);
}

TEST(Rng, NextBitsBalanced) {
  Rng rng(29);
  const BitVector bits = rng.next_bits(100000);
  const double ones = static_cast<double>(bits.popcount()) / bits.size();
  EXPECT_NEAR(ones, 0.5, 0.01);
}

TEST(SplitMix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), first);
  EXPECT_NE(splitmix64(s2), first);
}

}  // namespace
}  // namespace qkd
