#include "src/network/key_transport.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/network/key_service.hpp"
#include "src/qkd/engine.hpp"

namespace qkd::network {
namespace {

TEST(DistillFraction, PositiveAtOperatingPointZeroPastAlarm) {
  qkd::optics::LinkParams params;  // ~6 % QBER
  EXPECT_GT(estimated_distill_fraction(qkd::optics::LinkModel(params)), 0.1);
  params.interferometer_visibility = 0.7;  // 15 % error floor
  EXPECT_DOUBLE_EQ(estimated_distill_fraction(qkd::optics::LinkModel(params)),
                   0.0);
}

TEST(DistillFraction, AgreesWithEngineBackedServiceAtTwoOperatingPoints) {
  // The analytic mesh model is the fast estimator for the engine-backed
  // LinkKeyService; cross-validate them at the paper's 10 km operating
  // point and at 20 km. Stated tolerance: the engine-measured rate must be
  // within a factor of [0.4, 2.0] of the analytic prediction. The analytic
  // model ignores finite-block effects (the c*sigma confidence margin and
  // pa_margin_bits) that push the engine below it — increasingly so at
  // 20 km where batches are smaller — and it does not model auth
  // replenishment at all, so the engine runs with replenishment off here.
  for (const double fiber_km : {10.0, 20.0}) {
    qkd::optics::LinkParams params;
    params.fiber_km = fiber_km;
    const qkd::optics::LinkModel model(params);
    const double analytic_bps =
        model.sifted_rate_bps() * estimated_distill_fraction(model);
    ASSERT_GT(analytic_bps, 0.0) << fiber_km;

    Topology topo;
    const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
    const NodeId b = topo.add_node("b", NodeKind::kEndpoint);
    topo.add_link(a, b, params);
    LinkKeyService::Config config;
    config.proto.frame_slots = 1 << 20;
    config.proto.auth_replenish_bits = 0;
    config.seed = 42;
    LinkKeyService service(topo, config);
    service.run_batches(4);
    const double engine_bps =
        service.session(0).totals().distilled_rate_bps();

    EXPECT_GT(engine_bps, 0.4 * analytic_bps) << fiber_km << " km";
    EXPECT_LT(engine_bps, 2.0 * analytic_bps) << fiber_km << " km";
  }
}

TEST(LinkRate, CutAndEavesdroppedLinksProduceNothing) {
  Topology topo = Topology::star(2);
  Link link = topo.link(0);
  EXPECT_GT(link_distill_rate_bps(link), 0.0);
  link.state = LinkState::kCut;
  EXPECT_DOUBLE_EQ(link_distill_rate_bps(link), 0.0);
  link.state = LinkState::kEavesdropped;
  EXPECT_DOUBLE_EQ(link_distill_rate_bps(link), 0.0);
}

TEST(Mesh, LinksAccumulateKeyOverTime) {
  MeshSimulation mesh(Topology::star(3), 1);
  mesh.step(10.0);
  for (LinkId id = 0; id < mesh.topology().link_count(); ++id)
    EXPECT_GT(mesh.link_pool_bits(id), 100.0) << id;
}

TEST(Mesh, TransportDeliversKeyEndToEnd) {
  MeshSimulation mesh(Topology::relay_ring(6), 2);
  mesh.step(60.0);
  const auto result = mesh.transport_key(6, 7, 256);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.key.size(), 256u);
  EXPECT_EQ(result.route.nodes.front(), 6u);
  EXPECT_EQ(result.route.nodes.back(), 7u);
  // Every hop consumed the 256 payload bits plus the frame header+tag.
  EXPECT_EQ(result.pool_bits_consumed,
            (256u + MeshSimulation::kFrameOverheadBits) *
                result.route.hop_count());
}

TEST(Mesh, BatchedTransportAmortizesFrameOverheadAcrossRequests) {
  // Two same-destination requests in one frame pay the per-hop header+tag
  // once; two separate transports pay it twice. Same payload either way.
  MeshSimulation batched(Topology::relay_ring(6), 12);
  MeshSimulation separate(Topology::relay_ring(6), 12);
  batched.step(120.0);
  separate.step(120.0);

  const auto one_frame = batched.transport_key_batch(6, 7, {128, 64});
  ASSERT_TRUE(one_frame.success);
  const auto first = separate.transport_key(6, 7, 128);
  const auto second = separate.transport_key(6, 7, 64);
  ASSERT_TRUE(first.success);
  ASSERT_TRUE(second.success);
  ASSERT_EQ(one_frame.route.links, first.route.links);

  EXPECT_EQ(one_frame.key.size(), 128u + 64u);
  EXPECT_EQ(one_frame.pool_bits_consumed,
            (128u + 64u + MeshSimulation::kFrameOverheadBits) *
                one_frame.route.hop_count());
  EXPECT_LT(one_frame.pool_bits_consumed,
            first.pool_bits_consumed + second.pool_bits_consumed);
  EXPECT_EQ(first.pool_bits_consumed + second.pool_bits_consumed -
                one_frame.pool_bits_consumed,
            MeshSimulation::kFrameOverheadBits * one_frame.route.hop_count());

  // Both requests rode one frame, so both keys were seen by exactly the
  // frame's relay set — the same relays the separate transports exposed to.
  EXPECT_EQ(one_frame.exposed_to.size(), one_frame.route.hop_count() - 1);
  EXPECT_EQ(one_frame.exposed_to, first.exposed_to);
  for (NodeId relay : one_frame.exposed_to)
    EXPECT_EQ(batched.topology().node(relay).kind, NodeKind::kTrustedRelay);
}

TEST(Mesh, DegenerateTransportBatchesThrow) {
  MeshSimulation mesh(Topology::star(2), 13);
  mesh.step(10.0);
  EXPECT_THROW(mesh.transport_key_batch(1, 2, {}), std::invalid_argument);
  EXPECT_THROW(mesh.transport_key_batch(1, 2, {64, 0}),
               std::invalid_argument);
}

TEST(Mesh, StarvedBatchFailsWithoutConsumingAnyHop) {
  MeshSimulation mesh(Topology::relay_ring(6), 14);
  mesh.step(60.0);
  const double before = mesh.link_pool_bits(0);
  const auto result = mesh.transport_key_batch(6, 7, {1 << 20, 64});
  EXPECT_FALSE(result.success);
  EXPECT_DOUBLE_EQ(mesh.link_pool_bits(0), before);
}

TEST(Mesh, TransportExposesKeyToEveryIntermediateRelay) {
  // "the relays must be trusted" — the simulation records exactly who saw
  // the key in the clear.
  MeshSimulation mesh(Topology::relay_ring(6), 3);
  mesh.step(60.0);
  const auto result = mesh.transport_key(6, 7, 128);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.exposed_to.size(), result.route.hop_count() - 1);
  for (NodeId relay : result.exposed_to)
    EXPECT_EQ(mesh.topology().node(relay).kind, NodeKind::kTrustedRelay);
}

TEST(Mesh, FiberCutTriggersReroute) {
  MeshSimulation mesh(Topology::relay_ring(6), 4);
  mesh.step(120.0);
  const auto before = mesh.transport_key(6, 7, 128);
  ASSERT_TRUE(before.success);
  // Cut a link on the route just used.
  mesh.cut_link(before.route.links[1]);
  const auto after = mesh.transport_key(6, 7, 128);
  ASSERT_TRUE(after.success);  // mesh survives: the headline of Sec. 8
  EXPECT_NE(after.route.links, before.route.links);
  EXPECT_GE(mesh.stats().reroutes, 1u);
}

TEST(Mesh, EavesdroppingAbandonsLinkAndReroutes) {
  MeshSimulation mesh(Topology::relay_ring(6), 5);
  mesh.step(120.0);
  const auto before = mesh.transport_key(6, 7, 128);
  ASSERT_TRUE(before.success);
  const double qber = mesh.eavesdrop_link(before.route.links[1], 1.0);
  EXPECT_GT(qber, 0.11);
  EXPECT_EQ(mesh.topology().link(before.route.links[1]).state,
            LinkState::kEavesdropped);
  const auto after = mesh.transport_key(6, 7, 128);
  ASSERT_TRUE(after.success);
  EXPECT_NE(after.route.links, before.route.links);
}

TEST(Mesh, MildEavesdroppingSlowsButDoesNotKill) {
  MeshSimulation mesh(Topology::star(2), 6);
  const double qber = mesh.eavesdrop_link(0, 0.05);  // ~ +1.2 % QBER
  EXPECT_LT(qber, 0.11);
  EXPECT_EQ(mesh.topology().link(0).state, LinkState::kUp);
  MeshSimulation clean(Topology::star(2), 6);
  mesh.step(10.0);
  clean.step(10.0);
  EXPECT_LT(mesh.link_pool_bits(0), clean.link_pool_bits(0));
  EXPECT_GT(mesh.link_pool_bits(0), 0.0);
}

TEST(Mesh, SeveringAllPathsFailsTransport) {
  MeshSimulation mesh(Topology::relay_ring(4), 7);
  mesh.step(60.0);
  // alice attaches to relay 0 by the second-to-last link; cut both ring
  // directions out of relay 0.
  const auto r0_links = mesh.topology().links_of(0);
  for (LinkId id : r0_links) {
    if (!mesh.topology().link(id).connects(4))  // keep alice's tail link
      mesh.cut_link(id);
  }
  const auto result = mesh.transport_key(4, 5, 64);
  EXPECT_FALSE(result.success);
  EXPECT_GE(mesh.stats().transports_no_route, 1u);
}

TEST(Mesh, StarvedPoolsFailWithoutConsuming) {
  MeshSimulation mesh(Topology::relay_ring(6), 8);
  mesh.step(0.001);  // essentially no key accumulated
  const auto result = mesh.transport_key(6, 7, 100000);
  EXPECT_FALSE(result.success);
  EXPECT_GE(mesh.stats().transports_starved, 1u);
  // Pools untouched by the failed attempt.
  mesh.step(60.0);
  const auto retry = mesh.transport_key(6, 7, 128);
  EXPECT_TRUE(retry.success);
}

TEST(Mesh, MidRunRerouteAvoidsCutLinkAndUpdatesExposure) {
  // Transports are already flowing when the failure lands — the dynamic
  // version of the static-topology cut tests above. Time advances through
  // the shared clocked stepping path (run_on_clock), not ad-hoc step()s.
  MeshSimulation mesh(Topology::relay_ring(6), 10);
  qkd::SimClock clock;
  mesh.run_on_clock(clock, 240.0, /*tick_seconds=*/1.0);
  const auto first = mesh.transport_key(6, 7, 64);
  const auto second = mesh.transport_key(6, 7, 64);
  ASSERT_TRUE(first.success);
  ASSERT_TRUE(second.success);
  EXPECT_EQ(second.route.links, first.route.links) << "route stable pre-cut";
  EXPECT_EQ(mesh.stats().reroutes, 0u);

  // Cut a ring link in the middle of the active route; the rest of the
  // mesh keeps distilling.
  const LinkId cut = first.route.links[first.route.links.size() / 2];
  mesh.cut_link(cut);
  mesh.run_on_clock(clock, 30.0, /*tick_seconds=*/1.0);
  EXPECT_EQ(clock.now(), 270 * qkd::kSecond);

  const auto after = mesh.transport_key(6, 7, 64);
  ASSERT_TRUE(after.success);
  EXPECT_EQ(mesh.stats().reroutes, 1u);
  EXPECT_EQ(std::count(after.route.links.begin(), after.route.links.end(),
                       cut),
            0)
      << "new route must avoid the cut link";
  // The detour crosses the far side of the ring: a different relay set now
  // holds the key in the clear.
  EXPECT_NE(after.exposed_to, first.exposed_to);
  EXPECT_EQ(after.exposed_to.size(), after.route.hop_count() - 1);
  for (NodeId relay : after.exposed_to)
    EXPECT_EQ(mesh.topology().node(relay).kind, NodeKind::kTrustedRelay);
}

TEST(Mesh, CompromisedRelaysFlagDeliveredKeysUntilRestored) {
  MeshSimulation mesh(Topology::relay_ring(6), 11);
  mesh.step(240.0);
  // Relays 1 (east path) and 4 (west path) both fall: no clean route
  // remains, so delivery succeeds but is flagged as exposed to Eve.
  mesh.compromise_node(1);
  mesh.compromise_node(4);
  EXPECT_TRUE(mesh.node_compromised(1));
  const auto owned = mesh.transport_key(6, 7, 64);
  ASSERT_TRUE(owned.success);
  EXPECT_TRUE(owned.compromised);
  EXPECT_EQ(mesh.stats().transports_compromised, 1u);

  mesh.restore_node(1);
  mesh.restore_node(4);
  const auto clean = mesh.transport_key(6, 7, 64);
  ASSERT_TRUE(clean.success);
  EXPECT_FALSE(clean.compromised);
  EXPECT_EQ(mesh.stats().transports_compromised, 1u);
}

TEST(Mesh, RestoreLinkHeals) {
  MeshSimulation mesh(Topology::star(2), 9);
  mesh.cut_link(0);
  mesh.step(10.0);
  EXPECT_DOUBLE_EQ(mesh.link_pool_bits(0), 0.0);
  mesh.restore_link(0);
  mesh.step(10.0);
  EXPECT_GT(mesh.link_pool_bits(0), 0.0);
}

}  // namespace
}  // namespace qkd::network
