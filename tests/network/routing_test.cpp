#include "src/network/routing.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace qkd::network {
namespace {

Topology line_of_relays(std::size_t relays) {
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
  NodeId prev = a;
  for (std::size_t i = 0; i < relays; ++i) {
    const NodeId r =
        topo.add_node("r" + std::to_string(i), NodeKind::kTrustedRelay);
    topo.add_link(prev, r);
    prev = r;
  }
  const NodeId b = topo.add_node("b", NodeKind::kEndpoint);
  topo.add_link(prev, b);
  return topo;
}

TEST(Routing, FindsLinePath) {
  const Topology topo = line_of_relays(3);
  const auto route = shortest_route(topo, 0, 4);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->hop_count(), 4u);
  EXPECT_EQ(route->nodes.front(), 0u);
  EXPECT_EQ(route->nodes.back(), 4u);
}

TEST(Routing, TrivialAndInvalidCases) {
  const Topology topo = line_of_relays(1);
  const auto self = shortest_route(topo, 0, 0);
  ASSERT_TRUE(self.has_value());
  EXPECT_EQ(self->hop_count(), 0u);
  EXPECT_FALSE(shortest_route(topo, 0, 99).has_value());
}

TEST(Routing, AvoidsCutLinks) {
  Topology topo = Topology::relay_ring(6);
  const NodeId alice = 6, bob = 7;
  const auto direct = shortest_route(topo, alice, bob);
  ASSERT_TRUE(direct.has_value());
  // Cut a ring link on the chosen route; routing must go the other way
  // around (same length on a symmetric ring, but disjoint ring links).
  const LinkId cut = direct->links[1];
  topo.link(cut).state = LinkState::kCut;
  const auto detour = shortest_route(topo, alice, bob);
  ASSERT_TRUE(detour.has_value());
  EXPECT_EQ(std::count(detour->links.begin(), detour->links.end(), cut), 0);
  EXPECT_NE(detour->links, direct->links);
}

TEST(Routing, DisconnectedReturnsNullopt) {
  Topology topo = line_of_relays(2);
  topo.link(1).state = LinkState::kCut;  // sever the middle
  EXPECT_FALSE(shortest_route(topo, 0, 3).has_value());
}

TEST(Routing, EndpointsNeverTransit) {
  // a - b - c where b is an ENDPOINT: no route a->c may pass through b.
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
  const NodeId b = topo.add_node("b", NodeKind::kEndpoint);
  const NodeId c = topo.add_node("c", NodeKind::kEndpoint);
  topo.add_link(a, b);
  topo.add_link(b, c);
  EXPECT_FALSE(shortest_route(topo, a, c).has_value());
}

TEST(Routing, CustomCostPrefersCheaperPath) {
  // Diamond: a - r1 - b (2 hops) vs a - r2 - r3 - b (3 hops); make the
  // 2-hop path expensive.
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
  const NodeId r1 = topo.add_node("r1", NodeKind::kTrustedRelay);
  const NodeId r2 = topo.add_node("r2", NodeKind::kTrustedRelay);
  const NodeId r3 = topo.add_node("r3", NodeKind::kTrustedRelay);
  const NodeId b = topo.add_node("b", NodeKind::kEndpoint);
  const LinkId l1 = topo.add_link(a, r1);
  topo.add_link(r1, b);
  topo.add_link(a, r2);
  topo.add_link(r2, r3);
  topo.add_link(r3, b);
  const auto expensive_first = [&](const Link& link) {
    return link.id == l1 ? 100.0 : 1.0;
  };
  const auto route = shortest_route(topo, a, b, expensive_first);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->hop_count(), 3u);
}

TEST(Routing, DisjointPathCountOnRing) {
  const Topology ring = Topology::relay_ring(6);
  // Between two relays the ring offers both directions; the endpoints hang
  // off single tail links, so end-to-end redundancy is capped at 1 — adding
  // links is exactly how Sec. 8 says to buy more.
  EXPECT_EQ(disjoint_path_count(ring, 0, 3), 2u);
  EXPECT_EQ(disjoint_path_count(ring, 6, 7), 1u);
  Topology cut = ring;
  cut.link(0).state = LinkState::kCut;
  EXPECT_LE(disjoint_path_count(cut, 0, 3), 1u);
}

TEST(Routing, DisjointPathCountGrowsWithMeshDegree) {
  // A 5-node full mesh of relays between two endpoints: adding relays adds
  // disjoint paths — the "as much redundancy as desired" claim of Sec. 8.
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
  const NodeId b = topo.add_node("b", NodeKind::kEndpoint);
  std::vector<NodeId> relays;
  for (int i = 0; i < 4; ++i) {
    const NodeId r =
        topo.add_node("r" + std::to_string(i), NodeKind::kTrustedRelay);
    topo.add_link(a, r);
    topo.add_link(r, b);
    relays.push_back(r);
  }
  EXPECT_EQ(disjoint_path_count(topo, a, b), 4u);
}

}  // namespace
}  // namespace qkd::network
