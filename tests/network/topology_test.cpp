#include "src/network/topology.hpp"

#include <gtest/gtest.h>

namespace qkd::network {
namespace {

TEST(Topology, AddNodesAndLinks) {
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
  const NodeId b = topo.add_node("b", NodeKind::kEndpoint);
  const LinkId ab = topo.add_link(a, b);
  EXPECT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.link_count(), 1u);
  EXPECT_EQ(topo.link(ab).other(a), b);
  EXPECT_TRUE(topo.link(ab).connects(b));
}

TEST(Topology, RejectsBadLinks) {
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
  EXPECT_THROW(topo.add_link(a, a), std::invalid_argument);
  EXPECT_THROW(topo.add_link(a, 99), std::out_of_range);
}

TEST(Topology, LinkBetweenAndLinksOf) {
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
  const NodeId b = topo.add_node("b", NodeKind::kTrustedRelay);
  const NodeId c = topo.add_node("c", NodeKind::kEndpoint);
  topo.add_link(a, b);
  topo.add_link(b, c);
  EXPECT_TRUE(topo.link_between(a, b).has_value());
  EXPECT_TRUE(topo.link_between(c, b).has_value());  // orientation-free
  EXPECT_FALSE(topo.link_between(a, c).has_value());
  EXPECT_EQ(topo.links_of(b).size(), 2u);
  EXPECT_EQ(topo.links_of(a).size(), 1u);
}

TEST(Topology, FullMeshLinkCountIsQuadratic) {
  // Sec. 8: N*(N-1)/2 point-to-point links for full interconnection.
  for (std::size_t n : {2u, 5u, 10u}) {
    const Topology topo = Topology::full_mesh(n);
    EXPECT_EQ(topo.link_count(), n * (n - 1) / 2) << n;
    EXPECT_EQ(topo.node_count(), n);
  }
}

TEST(Topology, StarLinkCountIsLinear) {
  // "as few as N links in the case of a simple star topology".
  for (std::size_t n : {2u, 5u, 10u}) {
    const Topology topo = Topology::star(n);
    EXPECT_EQ(topo.link_count(), n) << n;
    EXPECT_EQ(topo.node_count(), n + 1);  // + the hub relay
    EXPECT_EQ(topo.node(0).kind, NodeKind::kTrustedRelay);
  }
}

TEST(Topology, RelayRingHasTwoDisjointPaths) {
  const Topology topo = Topology::relay_ring(6);
  // alice and bob are the last two nodes.
  EXPECT_EQ(topo.node(6).name, "alice");
  EXPECT_EQ(topo.node(7).name, "bob");
  EXPECT_EQ(topo.link_count(), 6u + 2u);
  EXPECT_THROW(Topology::relay_ring(2), std::invalid_argument);
}

}  // namespace
}  // namespace qkd::network
