#include "src/network/switch_network.hpp"

#include <gtest/gtest.h>

namespace qkd::network {
namespace {

/// a - s1 - s2 - ... - sk - b, all-optical.
Topology switch_chain(std::size_t switches, double span_km = 10.0) {
  Topology topo;
  const NodeId a = topo.add_node("alice", NodeKind::kEndpoint);
  qkd::optics::LinkParams optics;
  optics.fiber_km = span_km;
  optics.insertion_loss_db = 0.5;
  NodeId prev = a;
  for (std::size_t i = 0; i < switches; ++i) {
    const NodeId s =
        topo.add_node("sw" + std::to_string(i), NodeKind::kUntrustedSwitch);
    topo.add_link(prev, s, optics);
    prev = s;
  }
  const NodeId b = topo.add_node("bob", NodeKind::kEndpoint);
  topo.add_link(prev, b, optics);
  return topo;
}

TEST(SwitchPath, BudgetSumsFiberAndInsertion) {
  const Topology topo = switch_chain(2);
  const auto budget = best_switch_path(topo, 0, 3, 1.0);
  ASSERT_TRUE(budget.has_value());
  EXPECT_DOUBLE_EQ(budget->total_fiber_km, 30.0);
  EXPECT_DOUBLE_EQ(budget->switch_count, 2.0);
  // 3 spans x 0.5 dB + 2 switches x 1.0 dB.
  EXPECT_DOUBLE_EQ(budget->total_insertion_db, 3.5);
}

TEST(SwitchPath, EndToEndKeyWithoutTrustedRelays) {
  const Topology topo = switch_chain(2);
  const auto budget = best_switch_path(topo, 0, 3);
  ASSERT_TRUE(budget.has_value());
  EXPECT_TRUE(budget->in_range);
  EXPECT_GT(budget->distilled_rate_bps, 0.0);
}

TEST(SwitchPath, EachSwitchReducesReach) {
  // "each switch adds at least a fractional dB insertion loss along the
  // photonic path" — rate falls monotonically with switch count.
  double prev_rate = 1e18;
  for (std::size_t switches : {0u, 1u, 2u, 3u, 4u}) {
    const Topology topo = switch_chain(switches);
    const auto budget =
        best_switch_path(topo, 0, static_cast<NodeId>(switches + 1), 2.0);
    ASSERT_TRUE(budget.has_value()) << switches;
    EXPECT_LT(budget->distilled_rate_bps, prev_rate) << switches;
    prev_rate = budget->distilled_rate_bps;
  }
}

TEST(SwitchPath, LongChainsGoOutOfRange) {
  // Unlike trusted relays, switches cannot extend reach: enough spans push
  // the composite QBER past the alarm and the rate to zero.
  const Topology topo = switch_chain(8, 12.0);  // ~108 km + 9 insertions
  const auto budget = best_switch_path(topo, 0, 9, 2.0);
  ASSERT_TRUE(budget.has_value());
  EXPECT_FALSE(budget->in_range);
  EXPECT_DOUBLE_EQ(budget->distilled_rate_bps, 0.0);
}

TEST(SwitchPath, TrustedRelaysAreNotOpticallyTransparent) {
  // a - relay - b has no all-optical path.
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
  const NodeId r = topo.add_node("r", NodeKind::kTrustedRelay);
  const NodeId b = topo.add_node("b", NodeKind::kEndpoint);
  topo.add_link(a, r);
  topo.add_link(r, b);
  EXPECT_FALSE(best_switch_path(topo, a, b).has_value());
}

TEST(SwitchPath, PicksLowestLossRoute) {
  // Two optical routes: 1 switch with long fiber vs 2 switches with short
  // fiber; the budget should choose by total dB.
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
  const NodeId b = topo.add_node("b", NodeKind::kEndpoint);
  const NodeId s1 = topo.add_node("s1", NodeKind::kUntrustedSwitch);
  const NodeId s2 = topo.add_node("s2", NodeKind::kUntrustedSwitch);
  const NodeId s3 = topo.add_node("s3", NodeKind::kUntrustedSwitch);
  qkd::optics::LinkParams long_span;
  long_span.fiber_km = 40.0;  // 8 dB per span
  qkd::optics::LinkParams short_span;
  short_span.fiber_km = 5.0;  // 1 dB per span
  topo.add_link(a, s1, long_span);
  topo.add_link(s1, b, long_span);
  topo.add_link(a, s2, short_span);
  topo.add_link(s2, s3, short_span);
  topo.add_link(s3, b, short_span);
  const auto budget = best_switch_path(topo, a, b, 1.0);
  ASSERT_TRUE(budget.has_value());
  EXPECT_DOUBLE_EQ(budget->switch_count, 2.0);  // took the short-fiber route
  EXPECT_DOUBLE_EQ(budget->total_fiber_km, 15.0);
}

TEST(SwitchPath, DegenerateRouteRejected) {
  const Topology topo = switch_chain(1);
  Route degenerate;
  degenerate.nodes = {0};
  EXPECT_THROW(switch_path_budget(topo, degenerate), std::invalid_argument);
}

}  // namespace
}  // namespace qkd::network
