// Engine-backed mesh key service: real QkdLinkSessions distilling into
// per-link pools, parallel link execution, per-link eavesdropping, and the
// engine-backed MeshSimulation mode built on top.
#include "src/network/key_service.hpp"

#include <gtest/gtest.h>

#include "src/network/key_transport.hpp"

namespace qkd::network {
namespace {

/// Operating point small enough for tests but large enough to distill:
/// half-megaslot frames yield ~100 net bits per accepted batch.
LinkKeyService::Config test_config(std::uint64_t seed = 7,
                                   std::size_t threads = 0) {
  LinkKeyService::Config config;
  config.proto.frame_slots = 1 << 19;
  config.proto.auth_replenish_bits = 64;
  config.seed = seed;
  config.threads = threads;
  return config;
}

Topology single_link_topology(double fiber_km) {
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
  const NodeId b = topo.add_node("b", NodeKind::kEndpoint);
  qkd::optics::LinkParams optics;
  optics.fiber_km = fiber_km;
  topo.add_link(a, b, optics);
  return topo;
}

TEST(LinkKeyService, DistillsOnEveryLinkOfAFourRelayMesh) {
  // relay_ring(4): 4 trusted relays + 2 endpoints, 6 links — every link
  // gets its own engine and accumulates pairwise key.
  const Topology topo = Topology::relay_ring(4);
  LinkKeyService service(topo, test_config());
  service.run_batches(3);
  for (LinkId id = 0; id < topo.link_count(); ++id) {
    EXPECT_GT(service.pool_bits(id), 0u) << "link " << id;
    EXPECT_GT(service.session(id).totals().accepted_batches, 0u);
  }
}

TEST(LinkKeyService, ThreadCountDoesNotChangeAnyLinkKeyStream) {
  // Determinism across parallelism: per-link sessions and seeds are
  // independent, so a serial run and a 4-worker run must produce
  // bit-identical pools on every link.
  const Topology topo = Topology::relay_ring(4);
  LinkKeyService serial(topo, test_config(7, /*threads=*/1));
  LinkKeyService parallel(topo, test_config(7, /*threads=*/4));
  serial.run_batches(2);
  parallel.run_batches(2);
  for (LinkId id = 0; id < topo.link_count(); ++id)
    EXPECT_TRUE(serial.supply(id).take_all().bits ==
                parallel.supply(id).take_all().bits)
        << "link " << id;
}

TEST(LinkKeyService, WorkerLanesClampOnceAtConstruction) {
  // relay_ring(4) has 6 links: the lane count is min(threads, links),
  // decided ONCE when the pool is built — not per batch.
  const Topology topo = Topology::relay_ring(4);
  EXPECT_EQ(LinkKeyService(topo, test_config(7, 16)).worker_lanes(), 6u);
  EXPECT_EQ(LinkKeyService(topo, test_config(7, 3)).worker_lanes(), 3u);
  EXPECT_EQ(LinkKeyService(topo, test_config(7, 1)).worker_lanes(), 1u);
  EXPECT_EQ(LinkKeyService(single_link_topology(1.0), test_config(7, 8))
                .worker_lanes(),
            1u);

  // Disabling links mid-run must NOT re-clamp: the lane count is a
  // construction-time property (the old per-batch min() recomputed it).
  LinkKeyService service(topo, test_config(7, 16));
  for (LinkId id = 0; id + 1 < topo.link_count(); ++id)
    service.set_link_enabled(id, false);
  service.run_batches(1);
  EXPECT_EQ(service.worker_lanes(), 6u);
}

TEST(LinkKeyService, SharedWorkerPoolIsAdoptedAndStaysDeterministic) {
  // A caller-supplied pool is used as-is (its lane count wins over
  // Config::threads) and the distilled streams still match the serial
  // run bit for bit.
  const Topology topo = Topology::relay_ring(4);
  auto pool = std::make_shared<qkd::common::WorkerPool>(2);
  LinkKeyService::Config shared_config = test_config(7, /*threads=*/1);
  shared_config.pool = pool;
  LinkKeyService shared(topo, shared_config);
  EXPECT_EQ(shared.worker_lanes(), 2u);

  LinkKeyService serial(topo, test_config(7, /*threads=*/1));
  shared.run_batches(2);
  serial.run_batches(2);
  for (LinkId id = 0; id < topo.link_count(); ++id)
    EXPECT_TRUE(shared.supply(id).take_all().bits ==
                serial.supply(id).take_all().bits)
        << "link " << id;
}

TEST(LinkKeyService, LinksDeriveIndependentKeyStreams) {
  // Same optics, same master seed — but different links must not replay
  // each other's keys.
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
  const NodeId b = topo.add_node("b", NodeKind::kEndpoint);
  const NodeId c = topo.add_node("c", NodeKind::kEndpoint);
  topo.add_link(a, b);
  topo.add_link(b, c);
  LinkKeyService service(topo, test_config());
  service.run_batches(2);
  ASSERT_GT(service.pool_bits(0), 0u);
  EXPECT_FALSE(service.supply(0).take_all().bits ==
               service.supply(1).take_all().bits);
}

TEST(LinkKeyService, SupplyRequestsAreFifoAndRefuseShortPools) {
  // A failed request must not consume or reorder pool bits: a refusal
  // followed by a sufficient request yields the same stream as a single
  // withdrawal would have.
  const Topology topo = single_link_topology(10.0);
  LinkKeyService reference(topo, test_config(3, 1));
  LinkKeyService service(topo, test_config(3, 1));
  reference.run_batches(3);
  service.run_batches(3);
  const qkd::BitVector all = reference.supply(0).take_all().bits;
  ASSERT_GT(all.size(), 48u);

  qkd::keystore::KeySupply& supply = service.supply(0);
  const auto first = supply.request_bits(16);
  // Over-ask between two good requests: refused without consuming.
  EXPECT_FALSE(supply.request_bits(all.size()).has_value());
  const auto second = supply.request_bits(32);
  ASSERT_TRUE(first.has_value() && second.has_value());
  EXPECT_TRUE(first->bits == all.slice(0, 16));
  EXPECT_TRUE(second->bits == all.slice(16, 32));
  EXPECT_EQ(service.pool_bits(0), all.size() - 48);

  // And another refusal at the tail still leaves the remainder intact.
  EXPECT_FALSE(supply.request_bits(all.size()).has_value());
  EXPECT_EQ(service.pool_bits(0), all.size() - 48);
  const auto rest = supply.request_bits(all.size() - 48);
  ASSERT_TRUE(rest.has_value());
  EXPECT_TRUE(rest->bits == all.slice(48, all.size() - 48));
}

TEST(LinkKeyService, InterceptResendSuppressesOnlyTheAttackedLink) {
  const Topology topo = Topology::star(3);
  LinkKeyService service(topo, test_config());
  service.set_attack(0, std::make_unique<qkd::optics::InterceptResendAttack>(
                            1.0));
  service.run_batches(2);
  EXPECT_EQ(service.pool_bits(0), 0u);
  EXPECT_GT(service.session(0).totals().aborted_qber(), 0u);
  for (LinkId id = 1; id < topo.link_count(); ++id)
    EXPECT_GT(service.pool_bits(id), 0u) << "link " << id;
}

TEST(LinkKeyService, DisabledLinksRunNoBatches) {
  const Topology topo = Topology::star(2);
  LinkKeyService service(topo, test_config());
  service.set_link_enabled(0, false);
  service.run_batches(2);
  EXPECT_EQ(service.pool_bits(0), 0u);
  EXPECT_EQ(service.session(0).totals().batches, 0u);
  EXPECT_GT(service.pool_bits(1), 0u);
}

TEST(LinkKeyService, AdvanceRunsWholeFramesAndCarriesTheRemainder) {
  const Topology topo = single_link_topology(10.0);
  LinkKeyService service(topo, test_config(9, 1));
  const double frame_s = service.session(0).link().frame_duration_s(
      service.session(0).config().frame_slots);
  service.advance(2.5 * frame_s);  // two whole frames, half a frame owed
  EXPECT_EQ(service.session(0).totals().batches, 2u);
  service.advance(0.6 * frame_s);  // debt crosses one more whole frame
  EXPECT_EQ(service.session(0).totals().batches, 3u);
}

// ---- Engine-backed MeshSimulation -----------------------------------------

TEST(EngineMesh, TransportsKeyEndToEndOverAFourRelayRing) {
  // The acceptance scenario: pools filled by real distillation (not the
  // analytic shortcut), then a trusted-relay transport across the mesh.
  MeshSimulation mesh(Topology::relay_ring(4), 2, test_config());
  ASSERT_EQ(mesh.rate_model(), RateModel::kEngine);
  ASSERT_NE(mesh.key_service(), nullptr);

  const double frame_s = mesh.key_service()->session(0).link().frame_duration_s(
      mesh.key_service()->session(0).config().frame_slots);
  // Six frames per link: every pool must cover the 64-bit payload plus the
  // per-hop frame overhead.
  mesh.step(6.0 * frame_s);
  for (LinkId id = 0; id < mesh.topology().link_count(); ++id)
    EXPECT_GT(mesh.link_pool_bits(id), 0.0) << "link " << id;

  // relay_ring(4): endpoints are nodes 4 (alice) and 5 (bob).
  const auto result = mesh.transport_key(4, 5, 64);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.key.size(), 64u);
  EXPECT_EQ(result.pool_bits_consumed,
            (64u + MeshSimulation::kFrameOverheadBits) *
                result.route.hop_count());
}

TEST(EngineMesh, EavesdroppedLinkIsAbandonedAndStopsDistilling) {
  MeshSimulation mesh(Topology::star(2), 3, test_config());
  const double qber = mesh.eavesdrop_link(0, 1.0);
  EXPECT_GT(qber, 0.11);
  EXPECT_EQ(mesh.topology().link(0).state, LinkState::kEavesdropped);

  const double frame_s = mesh.key_service()->session(0).link().frame_duration_s(
      mesh.key_service()->session(0).config().frame_slots);
  mesh.step(2.0 * frame_s);
  EXPECT_DOUBLE_EQ(mesh.link_pool_bits(0), 0.0);  // abandoned: no batches
  EXPECT_GT(mesh.link_pool_bits(1), 0.0);         // the clean link distills

  // Restoration clears the attack; the engine resumes delivering key.
  mesh.restore_link(0);
  mesh.step(2.0 * frame_s);
  EXPECT_GT(mesh.link_pool_bits(0), 0.0);
}

TEST(EngineMesh, SubAlarmEavesdroppingIsChargedByTheRealPipeline) {
  // A 10 % intercept fraction stays below the alarm, but the engines see
  // the induced errors and distill measurably less than a clean mesh.
  MeshSimulation clean(Topology::star(2), 4, test_config());
  MeshSimulation tapped(Topology::star(2), 4, test_config());
  const double qber = tapped.eavesdrop_link(0, 0.10);
  EXPECT_LT(qber, 0.11);
  EXPECT_EQ(tapped.topology().link(0).state, LinkState::kUp);

  const double frame_s =
      clean.key_service()->session(0).link().frame_duration_s(
          clean.key_service()->session(0).config().frame_slots);
  clean.step(6.0 * frame_s);
  tapped.step(6.0 * frame_s);
  EXPECT_LT(tapped.link_pool_bits(0), clean.link_pool_bits(0));
}

}  // namespace
}  // namespace qkd::network
