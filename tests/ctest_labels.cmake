# Assigns multi-valued LABELS to every discovered test, by test binary.
#
# Runs at CTest load time via TEST_INCLUDE_FILES, appended AFTER the
# gtest_discover_tests includes so every test already exists. This detour
# exists because a semicolon list does not survive the argument plumbing of
# gtest_discover_tests(PROPERTIES LABELS ...) — it is re-split at each
# expansion level and arrives as separate property tokens.
#
# The rules here mirror tests/CMakeLists.txt's taxonomy:
#   *_long_test        -> fuzz;slow       (env-gated long legs, not tier1)
#   integration_wire_* -> wire            (two-process socket suite, opt-in)
#   *fuzz*             -> tier1;fuzz      (short randomized campaigns)
#   scenarios_*        -> tier1;scenarios (declarative corpus)
#   everything else    -> tier1

file(GLOB _qkd_discovery_files "${CMAKE_CURRENT_LIST_DIR}/*_tests.cmake")
foreach(_file IN LISTS _qkd_discovery_files)
  get_filename_component(_base "${_file}" NAME)
  string(REGEX REPLACE "\\[[0-9]+\\]_tests\\.cmake$" "" _target "${_base}")

  if(_target MATCHES "_long_test$")
    set(_labels fuzz slow)
  elseif(_target MATCHES "^integration_wire")
    set(_labels wire)
  elseif(_target MATCHES "fuzz")
    set(_labels tier1 fuzz)
  elseif(_target MATCHES "^scenarios_")
    set(_labels tier1 scenarios)
  else()
    set(_labels tier1)
  endif()

  file(STRINGS "${_file}" _add_lines REGEX "^add_test\\(")
  foreach(_line IN LISTS _add_lines)
    string(REGEX REPLACE "^add_test\\(\\[=+\\[([^]]+)\\]=+\\].*" "\\1"
           _test_name "${_line}")
    if(NOT _test_name STREQUAL _line)
      set_tests_properties("${_test_name}" PROPERTIES LABELS "${_labels}")
    endif()
  endforeach()
endforeach()
unset(_qkd_discovery_files)
