// Shared seeded-RNG helper for tests that draw randomness.
//
// Every randomized test constructs its generator through QKD_SEEDED_RNG so
// that (a) any assertion failure in scope prints the seed that produced it,
// and (b) a developer can replay or explore with QKD_TEST_SEED=<n> without
// editing the test. The generator itself is the simulator's own qkd::Rng, so
// test draws and simulation draws share one reproducible engine.
//
//   TEST(Cascade, CorrectsBursts) {
//     QKD_SEEDED_RNG(rng, 13);      // qkd::testing::SeededRng named `rng`
//     ...rng.next_bits(4096)...
//   }
//
// On failure gtest prints:  SeededRng seed=13 (replay: QKD_TEST_SEED=13)
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>

#include "src/common/rng.hpp"

namespace qkd::testing {

/// The test's default seed unless QKD_TEST_SEED overrides it from the
/// environment (applies to every QKD_SEEDED_RNG in the run).
inline std::uint64_t resolve_test_seed(std::uint64_t default_seed) {
  const char* override_seed = std::getenv("QKD_TEST_SEED");
  if (override_seed == nullptr || *override_seed == '\0') return default_seed;
  return std::strtoull(override_seed, nullptr, 10);
}

class SeededRng : public qkd::Rng {
 public:
  explicit SeededRng(std::uint64_t default_seed)
      : qkd::Rng(resolve_test_seed(default_seed)),
        seed_(resolve_test_seed(default_seed)) {}

  std::uint64_t seed() const { return seed_; }

  std::string trace() const {
    return "SeededRng seed=" + std::to_string(seed_) +
           " (replay: QKD_TEST_SEED=" + std::to_string(seed_) + ")";
  }

 private:
  std::uint64_t seed_;
};

}  // namespace qkd::testing

/// Declares `name` as a SeededRng and arranges for any gtest failure in the
/// enclosing scope to print the seed.
#define QKD_SEEDED_RNG(name, default_seed)              \
  ::qkd::testing::SeededRng name(default_seed);         \
  SCOPED_TRACE(name.trace())
