// Scenario corpus — VPN stories. A burst spanning an SA rollover, Eve on
// the quantum feed across a rekey window, and a feed outage bridged by the
// reserve, all on the scheduled-deadline timeline (no hand-ticking).
#include <gtest/gtest.h>

#include "src/sim/expect.hpp"
#include "src/sim/scenario.hpp"

namespace qkd::sim {
namespace {

using ipsec::CipherAlgo;
using ipsec::IpPacket;
using ipsec::PolicyAction;
using ipsec::QkdMode;
using ipsec::SpdEntry;
using ipsec::VpnLinkSimulation;
using ipsec::parse_ipv4;

SpdEntry protect_policy(double lifetime_s) {
  SpdEntry entry;
  entry.name = "vpn";
  entry.selector.src_prefix = parse_ipv4("10.1.0.0");
  entry.selector.src_mask = 0xffff0000;
  entry.selector.dst_prefix = parse_ipv4("10.2.0.0");
  entry.selector.dst_mask = 0xffff0000;
  entry.action = PolicyAction::kProtect;
  entry.cipher = CipherAlgo::kAes128;
  entry.qkd_mode = QkdMode::kHybrid;
  entry.qblocks_per_rekey = 1;
  entry.lifetime_seconds = lifetime_s;
  return entry;
}

IpPacket red_packet(std::uint64_t seq) {
  IpPacket packet;
  packet.src = parse_ipv4("10.1.0.5");
  packet.dst = parse_ipv4("10.2.0.7");
  packet.payload = Bytes{'p', 'k', 't', static_cast<std::uint8_t>(seq)};
  return packet;
}

/// The slowed engine feed of the VPN scenario tests: ~4.2 s Qframes at a
/// quarter of the pulses (wall time tracks pulses; the corpus tests wiring
/// and recovery, not throughput).
VpnLinkSimulation make_vpn(double lifetime_s, std::uint64_t seed) {
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, seed);
  vpn.install_mirrored_policy(protect_policy(lifetime_s));
  qkd::proto::QkdLinkConfig feed;
  feed.link.pulse_rate_hz = 0.25e6;
  feed.auth_replenish_bits = 64;
  vpn.enable_engine_feed(feed, seed);
  vpn.start();
  return vpn;
}

TEST(CorpusVpn, ContinuousBurstAcrossSaRolloverLosesNothing) {
  VpnLinkSimulation vpn = make_vpn(/*lifetime_s=*/20.0, 51);

  Scenario script;
  // One 30-second burst straddling the 20 s SA lifetime: rollover happens
  // mid-stream and must not drop a packet.
  script.at(30 * kSecond, TrafficBurst{0, 5.0, 30.0});

  ScenarioRunner runner(std::move(script));
  runner.attach_vpn(vpn);
  runner.set_traffic_source(red_packet);
  runner.run(75 * kSecond);

  EXPECT_EQ(vpn.a().stats().esp_sent, 150u);
  EXPECT_EQ(vpn.b().stats().delivered, 150u) << "rollover must be lossless";
  EXPECT_GE(vpn.a().stats().sa_rollovers, 1u);
  EXPECT_GE(vpn.a().ike().stats().phase2_completed, 2u);

  // The recorder saw an SA before any rollover could happen.
  const auto sa_up = runner.recorder().first_time(
      [](const TimelinePoint& p) { return p.tunnels[0].sas_installed > 0; });
  ASSERT_TRUE(sa_up.has_value());
  EXPECT_LE(*sa_up, 35 * kSecond);
}

TEST(CorpusVpn, EveOnTheFeedAcrossTheRekeyWindow) {
  VpnLinkSimulation vpn = make_vpn(/*lifetime_s=*/20.0, 52);

  Scenario script;
  // Bursts at 30/50/70 s as in the healthy baseline — but Eve holds the
  // quantum feed across the 50 s burst and the rekey the 20 s lifetime
  // forces inside (45, 55). Every batch she touches aborts on the QBER
  // alarm; the tunnel must ride through on reserve material and deliver
  // everything by the horizon.
  script.at(30 * kSecond, TrafficBurst{0, 5.0, 2.0})
      .at(45 * kSecond, StartEavesdrop{0, 1.0})
      .at(50 * kSecond, TrafficBurst{0, 5.0, 2.0})
      .at(55 * kSecond, StopEavesdrop{0})
      .at(70 * kSecond, TrafficBurst{0, 5.0, 2.0});

  ScenarioRunner runner(std::move(script));
  runner.attach_vpn(vpn);
  runner.set_traffic_source(red_packet);
  runner.run(100 * kSecond);

  // Eve really suppressed distillation for a stretch...
  EXPECT_GT(vpn.key_service()->session(0).totals().aborted_qber(), 0u);
  // ...yet no packet was lost and rekeys still completed.
  EXPECT_EQ(vpn.a().stats().esp_sent, 30u);
  EXPECT_EQ(vpn.b().stats().delivered, 30u);
  EXPECT_GE(vpn.a().ike().stats().phase2_completed, 2u);

  TimelineExpect expect(runner);
  expect.noted("StartEavesdrop").noted("StopEavesdrop");
  QKD_EXPECT_TIMELINE(expect);
}

TEST(CorpusVpn, FeedOutageIsBridgedAndDistillationResumes) {
  VpnLinkSimulation vpn = make_vpn(/*lifetime_s=*/20.0, 53);

  Scenario script;
  // The feed's fiber goes dark for 20 s spanning a burst and a rekey; once
  // re-enabled, distillation resumes and everything queued flows.
  script.at(30 * kSecond, TrafficBurst{0, 5.0, 2.0})
      .at(40 * kSecond, CutLink{0})
      .at(50 * kSecond, TrafficBurst{0, 5.0, 2.0})
      .at(60 * kSecond, RestoreLink{0})
      .at(75 * kSecond, TrafficBurst{0, 5.0, 2.0});

  ScenarioRunner runner(std::move(script));
  runner.attach_vpn(vpn);
  runner.set_traffic_source(red_packet);
  const std::uint64_t deposited_before_run =
      vpn.a().key_pool().stats().bits_deposited;
  runner.run(105 * kSecond);

  EXPECT_EQ(vpn.a().stats().esp_sent, 30u);
  EXPECT_EQ(vpn.b().stats().delivered, 30u) << "outage must be bridged";
  EXPECT_GT(vpn.a().key_pool().stats().bits_deposited, deposited_before_run)
      << "distillation resumed after the repair";
  EXPECT_GE(vpn.a().ike().stats().phase2_completed, 2u);
}

}  // namespace
}  // namespace qkd::sim
