// Scenario corpus — the health engine watching scripted days. The
// eavesdrop story (the paper's QBER-alarm-as-detector premise) must show
// up as a deterministic pending -> firing -> resolved arc through
// AlertExpect, the drought rule must track the purged pool, and a clean
// day must stay silent: an alert that fires without an incident is as
// much a bug as one that misses it.
#include <gtest/gtest.h>

#include "src/kms/client_fleet.hpp"
#include "src/kms/kms.hpp"
#include "src/obs/health/expect.hpp"
#include "src/obs/health/rules.hpp"
#include "src/obs/metrics.hpp"
#include "src/sim/expect.hpp"
#include "src/sim/scenario.hpp"

namespace qkd::kms {
namespace {

using network::MeshSimulation;
using network::Topology;
using namespace qkd::sim;
namespace health = qkd::obs::health;

/// relay_ring(6) with hot optics: endpoints are nodes 6 (alice) and
/// 7 (bob), the tail link is link 6 — same ring the workload corpus runs.
MeshSimulation hot_ring(std::uint64_t seed) {
  Topology topo = Topology::relay_ring(6);
  for (const network::Link& link : topo.links())
    topo.link(link.id).optics.pulse_rate_hz = 1e8;
  return MeshSimulation(std::move(topo), seed);
}

/// The workload harness plus the health layer: one registry fed by mesh
/// and KMS, the built-in rule pack, engine evaluations every sim second
/// on the scenario timeline.
struct HealthHarness {
  MeshSimulation mesh;
  ScenarioRunner runner;
  KeyManagementService kms;
  KmsClientFleet fleet;
  qkd::obs::MetricsRegistry registry;
  health::AlertEngine alerts;

  HealthHarness(std::uint64_t seed, Scenario scenario,
                KeyManagementService::Config kms_config)
      : mesh(hot_ring(seed)),
        runner(std::move(scenario)),
        kms(mesh, runner.scheduler(), kms_config),
        fleet(kms, runner.scheduler()),
        registry(kms.shard_count()),
        alerts(registry) {
    runner.attach_mesh(mesh);
    runner.attach_client_driver(fleet);
    runner.recorder().attach_service(kms);
    mesh.bind_metrics(registry, "mesh");
    kms.bind_metrics(registry, "kms");
    // The tail link is Eve's target; link 0 is across the ring and the
    // reroute keeps it clean — its rule is the negative control.
    alerts.add_rule(health::rules::qber_spike("mesh_link6_qber_percent", "6"));
    alerts.add_rule(health::rules::qber_spike("mesh_link0_qber_percent", "0"));
    alerts.add_rule(
        health::rules::pool_drought("mesh_link6_pool_bits", "6->7"));
    alerts.add_rule(health::rules::shed_surge("kms_bulk_shed", "bulk",
                                              /*per_second=*/0.5));
    runner.attach_alerts(alerts, kSecond);
  }
};

KeyManagementService::Config drought_config() {
  KeyManagementService::Config config;
  config.shed_after_starved_rounds = 2;
  config.retry_backoff = 500 * kMillisecond;
  return config;
}

Scenario loaded_day() {
  Scenario day;
  day.at(kSecond, ClientArrival{6, 7, /*qos=*/0, /*count=*/4,
                                /*request_rate_hz=*/2.0, /*bits=*/128});
  day.at(kSecond, ClientArrival{6, 7, /*qos=*/1, /*count=*/6,
                                /*request_rate_hz=*/2.0, /*bits=*/128});
  day.at(kSecond, ClientArrival{6, 7, /*qos=*/2, /*count=*/8,
                                /*request_rate_hz=*/2.0, /*bits=*/128});
  return day;
}

TEST(ScenarioHealth, EavesdropRaisesTheAlarmsThenResolvesThem) {
  Scenario day = loaded_day();
  // Eve camps on the tail link for twenty seconds mid-run.
  day.at(15 * kSecond, StartEavesdrop{6, 1.0});
  day.at(35 * kSecond, StopEavesdrop{6});

  HealthHarness h(47, std::move(day), drought_config());
  h.runner.run(60 * kSecond);

  // The QBER rule is the eavesdropping detector: intercept-resend drives
  // the link gauge to ~25% within one evaluation of Eve's arrival, the 2s
  // debounce holds, and her departure resolves it.
  health::AlertExpect expect(h.alerts);
  expect.expect_alert("qber_spike:6")
      .pending_by(17 * kSecond)
      .firing_between(16 * kSecond, 22 * kSecond)
      .resolved_by(40 * kSecond)
      .full_lifecycle()
      .state_now(health::AlertState::kResolved);
  // The alarm purges the tail pool; the drought rule follows it down and
  // recovers once distillation restarts.
  expect.expect_alert("pool_drought:6->7")
      .firing_between(16 * kSecond, 30 * kSecond)
      .resolved_by(55 * kSecond)
      .state_now(health::AlertState::kResolved);
  // Sustained starvation sheds the bulk class: the surge rule sees the
  // shed counter climb.
  expect.expect_alert("shed_surge:bulk").fired();
  // The mesh reroutes around Eve; the far side of the ring never alarms.
  expect.expect_alert("qber_spike:0").never_fires();
  QKD_EXPECT_ALERTS(expect);

  // The transitions also land on the shared timeline as annotations (the
  // attach_alerts bridge), next to the scenario's own marks.
  TimelineExpect timeline(h.runner);
  timeline.noted("alert qber_spike:6: inactive -> pending")
      .noted("alert qber_spike:6: firing -> resolved")
      .noted("alert pool_drought:6->7");
  QKD_EXPECT_TIMELINE(timeline);

  // And the assembled incidents carry the same story for the report path.
  bool saw_qber_incident = false;
  for (const health::Incident& incident : h.alerts.incidents()) {
    if (incident.rule != "qber_spike:6") continue;
    saw_qber_incident = true;
    EXPECT_TRUE(incident.resolved());
    EXPECT_GT(incident.peak_value, 11.0)
        << "peak QBER above the protocol abort threshold";
  }
  EXPECT_TRUE(saw_qber_incident);
}

TEST(ScenarioHealth, CleanDayRaisesNoAlarms) {
  HealthHarness h(48, loaded_day(), KeyManagementService::Config());
  h.runner.run(30 * kSecond);

  health::AlertExpect expect(h.alerts);
  expect.expect_alert("qber_spike:6").never_fires();
  expect.expect_alert("qber_spike:0").never_fires();
  expect.expect_alert("shed_surge:bulk").never_fires();
  QKD_EXPECT_ALERTS(expect);
  EXPECT_EQ(h.alerts.state("pool_drought:6->7"),
            health::AlertState::kInactive)
      << "healthy supply never lets the pool sit under the floor";
  EXPECT_TRUE(h.alerts.incidents().empty());

  // Determinism: the engine ticked once per second plus the horizon tick.
  EXPECT_EQ(h.alerts.stats().evaluations, 30u);
  EXPECT_EQ(h.alerts.last_evaluated(), 30 * kSecond);
}

TEST(ScenarioHealth, AttachAlertsRejectsANonPositiveInterval) {
  Scenario day;
  ScenarioRunner runner(std::move(day));
  qkd::obs::MetricsRegistry registry;
  health::AlertEngine alerts(registry);
  EXPECT_THROW(runner.attach_alerts(alerts, 0), std::invalid_argument);
}

}  // namespace
}  // namespace qkd::kms
