// Scenario corpus — failure stories. Cascading fiber cuts, endpoint
// isolation, flapping links, cut-while-eavesdropped interactions and the
// pool refill after repair, all as declarative scripts with TimelineExpect
// golden assertions.
#include <gtest/gtest.h>

#include "src/sim/expect.hpp"
#include "src/sim/scenario.hpp"

namespace qkd::sim {
namespace {

using network::MeshSimulation;
using network::NodeId;
using network::Topology;

constexpr NodeId kAlice = 6;
constexpr NodeId kBob = 7;

/// relay_ring(6) with hot optics: restored links refill within seconds, so
/// the repaired half of every story is observable inside a short horizon.
MeshSimulation hot_ring(std::uint64_t seed) {
  Topology topo = Topology::relay_ring(6);
  for (const network::Link& link : topo.links())
    topo.link(link.id).optics.pulse_rate_hz = 1e8;
  return MeshSimulation(std::move(topo), seed);
}

TEST(CorpusFailure, CascadingCutsPeelPathsAwayThenRepairHeals) {
  MeshSimulation mesh = hot_ring(31);
  Scenario script;
  script.at(10 * kSecond, CutLink{1})  // east loses relay1-relay2
      .at(20 * kSecond, KeyRequest{kAlice, kBob, 128})  // #0: west
      .at(25 * kSecond, CutLink{4})    // the cascade reaches the west path
      .at(35 * kSecond, KeyRequest{kAlice, kBob, 128})  // #1: nothing left
      .at(40 * kSecond, RestoreLink{1})
      .at(55 * kSecond, KeyRequest{kAlice, kBob, 128});  // #2: east again

  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  runner.run(60 * kSecond);

  TimelineExpect expect(runner);
  expect.link_down_by(1, 11 * kSecond)
      .request_served(0)
      .request_avoids_link(0, 1)
      .link_down_by(4, 26 * kSecond)
      .request_failed(1)
      .link_up_by(1, 39 * kSecond, 41 * kSecond)
      .request_served(2)
      .request_avoids_link(2, 4)
      .noted("RestoreLink");
  QKD_EXPECT_TIMELINE(expect);
}

TEST(CorpusFailure, TailCutIsolatesTheEndpointUntilSpliced) {
  MeshSimulation mesh = hot_ring(32);
  Scenario script;
  script.at(10 * kSecond, CutLink{6})  // alice's only tail link
      .at(20 * kSecond, KeyRequest{kAlice, kBob, 128})  // #0: isolated
      .at(30 * kSecond, RestoreLink{6})
      .at(45 * kSecond, KeyRequest{kAlice, kBob, 128});  // #1: back

  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  runner.run(50 * kSecond);

  TimelineExpect expect(runner);
  expect.link_down_by(6, 11 * kSecond)
      .request_failed(0)
      .link_up_by(6, 29 * kSecond, 31 * kSecond)
      .request_served(1);
  QKD_EXPECT_TIMELINE(expect);
}

TEST(CorpusFailure, FlappingLinkSettlesIntoService) {
  MeshSimulation mesh = hot_ring(33);
  Scenario script;
  script.at(5 * kSecond, CutLink{0})
      .at(8 * kSecond, RestoreLink{0})
      .at(11 * kSecond, CutLink{0})
      .at(14 * kSecond, RestoreLink{0})
      .at(17 * kSecond, CutLink{0})
      .at(20 * kSecond, RestoreLink{0})
      .at(30 * kSecond, KeyRequest{kAlice, kBob, 128});

  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  runner.run(35 * kSecond);

  TimelineExpect expect(runner);
  expect.link_down_by(0, 6 * kSecond)
      .link_up_by(0, 19 * kSecond, 21 * kSecond)
      .request_served(0);
  QKD_EXPECT_TIMELINE(expect);
}

TEST(CorpusFailure, EveLeavingACutLinkDoesNotSpliceTheFiber) {
  MeshSimulation mesh = hot_ring(34);
  Scenario script;
  script.at(5 * kSecond, StartEavesdrop{0, 1.0})  // tapped...
      .at(10 * kSecond, CutLink{0})               // ...then cut outright
      .at(15 * kSecond, StopEavesdrop{0})  // Eve walks; the fiber stays cut
      .at(20 * kSecond, KeyRequest{kAlice, kBob, 128})  // #0: west only
      .at(25 * kSecond, RestoreLink{0})
      .at(40 * kSecond, KeyRequest{kAlice, kBob, 128});  // #1: east usable

  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  runner.run(45 * kSecond);

  TimelineExpect expect(runner);
  expect.link_down_by(0, 6 * kSecond)
      .request_served(0)
      .request_avoids_link(0, 0)
      .link_up_by(0, 24 * kSecond, 26 * kSecond)
      .request_served(1);
  QKD_EXPECT_TIMELINE(expect);
  // The interval (15, 25) — Eve gone, fiber still severed — must read down.
  const auto spliced_early =
      runner.recorder().first_time([](const TimelinePoint& p) {
        return p.t > 16 * kSecond && p.t < 25 * kSecond && p.links[0].usable;
      });
  EXPECT_FALSE(spliced_early.has_value())
      << "StopEavesdrop must not repair a cut fiber";
}

TEST(CorpusFailure, SimultaneousDualCutAndDualRepair) {
  MeshSimulation mesh = hot_ring(35);
  Scenario script;
  script.at(10 * kSecond, CutLink{0})
      .at(10 * kSecond, CutLink{5})  // both ring exits cut in one instant
      .at(20 * kSecond, KeyRequest{kAlice, kBob, 128})  // #0: no route
      .at(30 * kSecond, RestoreLink{0})
      .at(30 * kSecond, RestoreLink{5})
      .at(45 * kSecond, KeyRequest{kAlice, kBob, 128});  // #1: served

  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  runner.run(50 * kSecond);

  TimelineExpect expect(runner);
  expect.link_down_by(0, 11 * kSecond)
      .link_down_by(5, 11 * kSecond)
      .request_failed(0)
      .link_up_by(0, 29 * kSecond, 31 * kSecond)
      .link_up_by(5, 29 * kSecond, 31 * kSecond)
      .request_served(1);
  QKD_EXPECT_TIMELINE(expect);
}

TEST(CorpusFailure, PoolsRefillAfterRepair) {
  MeshSimulation mesh = hot_ring(36);
  Scenario script;
  script.at(5 * kSecond, CutLink{6}).at(15 * kSecond, RestoreLink{6});

  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  runner.run(30 * kSecond);

  TimelineExpect expect(runner);
  expect.link_down_by(6, 6 * kSecond)
      .link_up_by(6, 14 * kSecond, 16 * kSecond)
      .pool_at_least_by(6, 1000.0, 30 * kSecond);
  QKD_EXPECT_TIMELINE(expect);
}

}  // namespace
}  // namespace qkd::sim
