// Scenario corpus — attack stories. Coordinated multi-link eavesdropping,
// below-alarm taps, relay-compromise campaigns with sweeps (RestoreNode),
// and Eve chasing the reroute across restores. Every test is one
// declarative script run end to end on the scheduler, checked with
// TimelineExpect golden assertions.
#include <gtest/gtest.h>

#include "src/sim/expect.hpp"
#include "src/sim/scenario.hpp"

namespace qkd::sim {
namespace {

using network::MeshSimulation;
using network::NodeId;
using network::Topology;

// relay_ring(6): relays 0..5, alice = node 6 (tail link 6 to relay 0),
// bob = node 7 (tail link 7 to relay 3). Disjoint relay paths: east
// 0-1-2-3 over links 0,1,2 and west 0-5-4-3 over links 5,4,3.
constexpr NodeId kAlice = 6;
constexpr NodeId kBob = 7;

MeshSimulation ring(std::uint64_t seed) {
  return MeshSimulation(Topology::relay_ring(6), seed);
}

/// Optics hot enough that an abandoned link's pool refills within seconds
/// of being restored (for stories whose ending depends on the refill).
MeshSimulation hot_ring(std::uint64_t seed) {
  Topology topo = Topology::relay_ring(6);
  for (const network::Link& link : topo.links())
    topo.link(link.id).optics.pulse_rate_hz = 1e8;
  return MeshSimulation(std::move(topo), seed);
}

TEST(CorpusAttack, CoordinatedEavesdropSealsBothPathsUntilEveLeaves) {
  MeshSimulation mesh = ring(21);
  Scenario script;
  script.at(10 * kSecond, StartEavesdrop{0, 1.0})  // east sealed
      .at(10 * kSecond, StartEavesdrop{5, 1.0})    // west sealed: coordinated
      .at(20 * kSecond, KeyRequest{kAlice, kBob, 128})  // #0: no path left
      .at(30 * kSecond, StopEavesdrop{0})
      .at(30 * kSecond, StopEavesdrop{5})
      .at(50 * kSecond, KeyRequest{kAlice, kBob, 128});  // #1: served again

  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  runner.run(60 * kSecond);

  TimelineExpect expect(runner);
  expect.link_down_by(0, 11 * kSecond)
      .link_down_by(5, 11 * kSecond)
      .request_failed(0)
      .link_up_by(0, 29 * kSecond, 31 * kSecond)
      .link_up_by(5, 29 * kSecond, 31 * kSecond)
      .request_served(1)
      .request_clean(1);
  QKD_EXPECT_TIMELINE(expect);
}

TEST(CorpusAttack, BelowAlarmTapDegradesYieldButKeepsTheLinkInService) {
  MeshSimulation mesh = ring(22);
  Scenario script;
  script.at(5 * kSecond, StartEavesdrop{0, 0.05})  // under the QBER alarm
      .at(40 * kSecond, KeyRequest{kAlice, kBob, 128});

  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  runner.run(50 * kSecond);

  TimelineExpect expect(runner);
  expect.request_served(0).request_clean(0);
  QKD_EXPECT_TIMELINE(expect);
  // Below the alarm there is no abandonment: the link never reads down.
  const auto down = runner.recorder().first_time(
      [](const TimelinePoint& p) { return !p.links[0].usable; });
  EXPECT_FALSE(down.has_value())
      << "a 5% tap must degrade yield, not trip the alarm";
}

TEST(CorpusAttack, RelayCompromiseCampaignFlagsUntilTheSweep) {
  MeshSimulation mesh = ring(23);
  Scenario script;
  script.at(10 * kSecond, CompromiseNode{1})  // east relay owned
      .at(10 * kSecond, CompromiseNode{4})    // west relay owned: campaign
      .at(20 * kSecond, KeyRequest{kAlice, kBob, 64})  // #0: nowhere clean
      .at(30 * kSecond, RestoreNode{1})                // swept and re-trusted
      .at(30 * kSecond, RestoreNode{4})
      .at(40 * kSecond, KeyRequest{kAlice, kBob, 64});  // #1: clean again

  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  runner.run(50 * kSecond);

  TimelineExpect expect(runner);
  expect.request_served(0)
      .request_flagged_compromised(0)
      .request_served(1)
      .request_clean(1);
  QKD_EXPECT_TIMELINE(expect);
}

TEST(CorpusAttack, SingleOwnedRelayIsRoutedAround) {
  MeshSimulation mesh = ring(24);
  Scenario script;
  script.at(10 * kSecond, CompromiseNode{1})
      .at(20 * kSecond, KeyRequest{kAlice, kBob, 64});

  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  runner.run(30 * kSecond);

  TimelineExpect expect(runner);
  expect.request_served(0).request_clean(0).request_avoids_node(0, 1);
  QKD_EXPECT_TIMELINE(expect);
}

TEST(CorpusAttack, TapPlusCompromisePoisonsTheOnlyRemainingPath) {
  MeshSimulation mesh = ring(25);
  Scenario script;
  script.at(10 * kSecond, StartEavesdrop{4, 1.0})  // west path abandoned
      .at(10 * kSecond, CompromiseNode{2})         // east relay owned
      .at(20 * kSecond, KeyRequest{kAlice, kBob, 64})  // #0: forced east
      .at(30 * kSecond, StopEavesdrop{4})
      .at(30 * kSecond, RestoreNode{2})
      .at(40 * kSecond, KeyRequest{kAlice, kBob, 64});  // #1: clean

  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  runner.run(50 * kSecond);

  TimelineExpect expect(runner);
  expect.request_served(0)
      .request_flagged_compromised(0)
      .request_served(1)
      .request_clean(1);
  QKD_EXPECT_TIMELINE(expect);
}

TEST(CorpusAttack, EveChasesTheRerouteAfterTheRestore) {
  MeshSimulation mesh = ring(26);
  Scenario script;
  script.at(10 * kSecond, StartEavesdrop{0, 1.0})  // east out
      .at(20 * kSecond, KeyRequest{kAlice, kBob, 64})  // #0: west
      .at(30 * kSecond, StopEavesdrop{0})          // east restored...
      .at(30 * kSecond, StartEavesdrop{4, 1.0})    // ...and Eve redirects west
      .at(40 * kSecond, KeyRequest{kAlice, kBob, 64});  // #1: back east

  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  runner.run(50 * kSecond);

  TimelineExpect expect(runner);
  expect.request_served(0)
      .request_avoids_link(0, 0)
      .request_served(1)
      .request_avoids_link(1, 4)
      .requests_rerouted(0, 1);
  QKD_EXPECT_TIMELINE(expect);
}

TEST(CorpusAttack, TapOnTheTailLinkIsTotalDenialUntilRestore) {
  MeshSimulation mesh = hot_ring(27);
  Scenario script;
  script.at(10 * kSecond, StartEavesdrop{6, 1.0})  // alice's only tail
      .at(20 * kSecond, KeyRequest{kAlice, kBob, 128})  // #0: isolated
      .at(30 * kSecond, StopEavesdrop{6})
      .at(45 * kSecond, KeyRequest{kAlice, kBob, 128});  // #1: refilled

  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);
  runner.run(50 * kSecond);

  TimelineExpect expect(runner);
  expect.link_down_by(6, 11 * kSecond)
      .request_failed(0)
      .link_up_by(6, 29 * kSecond, 31 * kSecond)
      .pool_at_least_by(6, 128.0, 45 * kSecond)
      .request_served(1);
  QKD_EXPECT_TIMELINE(expect);
}

}  // namespace
}  // namespace qkd::sim
