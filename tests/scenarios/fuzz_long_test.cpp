// Randomized scenario fuzzing, long budget. Skipped unless
// QKD_FUZZ_LONG_CASES is set (the nightly / workflow_dispatch CI leg sets
// it); cases are bigger than the tier-1 sweep — more actions, longer
// horizons — and drawn from a disjoint seed base. Every failure's seed and
// minimized script is also appended to the artifact file named by
// QKD_FUZZ_ARTIFACT so CI can upload it.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "fuzz_harness.hpp"

namespace qkd::testing {
namespace {

constexpr std::uint64_t kLongCampaignBase = 0x10A6F0220000ULL;

TEST(ScenarioFuzzLong, ExtendedCampaignHoldsEveryInvariant) {
  const char* budget = std::getenv("QKD_FUZZ_LONG_CASES");
  if (budget == nullptr || *budget == '\0')
    GTEST_SKIP() << "set QKD_FUZZ_LONG_CASES=<n> to run the long fuzz leg";
  const auto cases =
      static_cast<std::size_t>(std::strtoull(budget, nullptr, 10));

  sim::ScenarioFuzzer::Config config;
  config.max_relays = 10;
  config.max_actions = 48;
  config.horizon = 120 * kSecond;

  std::string artifact_lines;
  std::uint64_t grants = 0;
  for (std::size_t i = 0; i < cases; ++i) {
    const std::uint64_t seed = kLongCampaignBase + i;
    sim::ScenarioFuzzer fuzzer(seed, config);
    const sim::FuzzCase fuzz_case = fuzzer.generate();
    const FuzzRunResult result = run_fuzz_case(fuzz_case);
    grants += result.grants;
    if (!result.violation.empty()) {
      const std::string report =
          fuzz_failure_report(fuzz_case, result.violation);
      ADD_FAILURE() << report;
      artifact_lines += report + "\n";
    }
  }
  EXPECT_GT(grants, 0u) << "the campaign never exercised the KMS";

  if (!artifact_lines.empty()) {
    const char* artifact = std::getenv("QKD_FUZZ_ARTIFACT");
    std::ofstream out(artifact != nullptr && *artifact != '\0'
                          ? artifact
                          : "fuzz_failing_seeds.txt");
    out << artifact_lines;
  }
}

}  // namespace
}  // namespace qkd::testing
