// The fuzz oracle: runs one generated FuzzCase through the full stack
// (analytic mesh + KMS + client fleet on one ScenarioRunner) and checks
// the global invariants after EVERY scenario event and at the horizon:
//
//   * legality      — the action sequence passes validate_actions()
//   * lockstep      — each pair's mirrored pools agree on available bits,
//                     next key_id and every Stats counter, always
//   * QoS floor     — the realtime class is never shed
//   * flagging      — a grant is marked compromised iff its frame was
//                     exposed to a currently-owned relay (no unflagged
//                     traversal, no false alarms)
//   * conservation  — bits granted == bits withdrawn <= bits distilled
//                     into the pair stores (frame payloads + reclaims)
//   * monotonicity  — scenario time and grant timestamps never run
//                     backwards
//
// run_fuzz_scenario() returns the first violation as text (empty = all
// held); fuzz_failure_report() shrinks the failing script with minimize()
// and renders the seed + minimized action list a developer replays.
#pragma once

#include <set>
#include <string>
#include <utility>

#include "src/kms/client_fleet.hpp"
#include "src/kms/kms.hpp"
#include "src/sim/fuzz.hpp"

namespace qkd::testing {

struct FuzzRunResult {
  std::string violation;  // empty: every invariant held to the horizon
  std::size_t dispatched = 0;
  std::uint64_t grants = 0;
};

/// Runs `scenario` against the case's topology/seed (the case's own script
/// or a minimized variant of it).
inline FuzzRunResult run_fuzz_scenario(const sim::FuzzCase& fuzz_case,
                                       const sim::Scenario& scenario) {
  FuzzRunResult result;
  const auto illegal = sim::validate_actions(fuzz_case.topology, scenario);
  if (!illegal.empty()) {
    result.violation = "illegal action sequence: " + illegal.front();
    return result;
  }

  network::MeshSimulation mesh(fuzz_case.topology, fuzz_case.mesh_seed);
  sim::ScenarioRunner runner(scenario);
  runner.attach_mesh(mesh);

  kms::KeyManagementService::Config kms_config;
  kms_config.shed_after_starved_rounds = 2;  // droughts reach the shedder
  kms::KeyManagementService kms(mesh, runner.scheduler(), kms_config);
  kms::KmsClientFleet fleet(kms, runner.scheduler());
  runner.attach_client_driver(fleet);
  runner.recorder().attach_service(kms);

  std::string violation;
  const auto flag = [&violation](std::string message) {
    if (violation.empty()) violation = std::move(message);
  };

  // Relays currently owned, mirrored from the applied actions (state only
  // changes at actions, and the observer runs before any further event).
  std::set<network::NodeId> owned;

  std::uint64_t grants = 0;
  kms.set_grant_observer([&](const kms::Grant& grant) {
    if (grant.status != kms::GrantStatus::kGranted) return;
    ++grants;
    if (grant.granted_at < grant.requested_at)
      flag("grant timestamps ran backwards (granted_at < requested_at)");
    bool exposed_to_owned = false;
    for (network::NodeId node : grant.exposed_to)
      if (owned.count(node) != 0) exposed_to_owned = true;
    if (grant.compromised != exposed_to_owned)
      flag(std::string("compromise flagging broken: grant ") +
           (grant.compromised ? "flagged with no owned relay on its route"
                              : "traversed an owned relay unflagged"));
  });

  qkd::SimTime last_now = -1;
  const auto check_invariants = [&](qkd::SimTime now) {
    if (now < last_now) flag("scenario time ran backwards");
    last_now = now;

    std::uint64_t withdrawn = 0;
    std::uint64_t deposited = 0;
    for (const auto& pair : kms.inspect_pairs()) {
      const std::string tag = "pair " + std::to_string(pair.src) + "->" +
                              std::to_string(pair.dst) + ": mirrored stores ";
      if (pair.src_available_bits != pair.dst_available_bits)
        flag(tag + "diverged in available bits");
      if (pair.src_next_key_id != pair.dst_next_key_id)
        flag(tag + "diverged in next key_id");
      if (pair.src_stats.bits_deposited != pair.dst_stats.bits_deposited ||
          pair.src_stats.bits_withdrawn != pair.dst_stats.bits_withdrawn ||
          pair.src_stats.failed_withdrawals !=
              pair.dst_stats.failed_withdrawals)
        flag(tag + "diverged in flow counters");
      withdrawn += pair.src_stats.bits_withdrawn;
      deposited += pair.src_stats.bits_deposited;
    }

    std::uint64_t granted_bits = 0;
    for (std::size_t qos = 0; qos < kms::kQosClassCount; ++qos)
      granted_bits +=
          kms.class_stats(static_cast<kms::QosClass>(qos)).bits_granted;
    if (granted_bits != withdrawn)
      flag("conservation broken: granted " + std::to_string(granted_bits) +
           " bits but withdrew " + std::to_string(withdrawn));
    if (withdrawn > deposited)
      flag("conservation broken: withdrew " + std::to_string(withdrawn) +
           " bits from " + std::to_string(deposited) + " distilled");

    if (kms.class_stats(kms::QosClass::kRealtime).shed != 0)
      flag("the realtime class was shed");
  };

  runner.set_action_observer(
      [&](qkd::SimTime now, const sim::ScenarioAction& action) {
        if (const auto* compromise = std::get_if<sim::CompromiseNode>(&action))
          owned.insert(compromise->node);
        if (const auto* restore = std::get_if<sim::RestoreNode>(&action))
          owned.erase(restore->node);
        check_invariants(now);
      });

  result.dispatched = runner.run(fuzz_case.horizon);
  check_invariants(runner.clock().now());
  result.grants = grants;
  result.violation = std::move(violation);
  return result;
}

inline FuzzRunResult run_fuzz_case(const sim::FuzzCase& fuzz_case) {
  return run_fuzz_scenario(fuzz_case, fuzz_case.scenario);
}

/// What a failing campaign prints: the violation, the seed, and the
/// greedily minimized action script that still reproduces it.
inline std::string fuzz_failure_report(const sim::FuzzCase& fuzz_case,
                                       const std::string& violation) {
  const sim::Scenario minimized = sim::minimize(
      fuzz_case.scenario, [&fuzz_case](const sim::Scenario& candidate) {
        return !run_fuzz_scenario(fuzz_case, candidate).violation.empty();
      });
  return "invariant violated: " + violation + "\nreplay: ScenarioFuzzer(" +
         std::to_string(fuzz_case.seed) +
         ").generate()\nminimized script:\n" +
         fuzz_case.script_for(minimized);
}

}  // namespace qkd::testing
