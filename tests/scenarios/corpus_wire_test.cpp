// Scenario corpus — wire stories. The classical channel misbehaving under
// a live protocol: a latency spike landing mid-distillation (the lockstep
// Cascade dialogue stalls but completes, and the timeline shows the slower
// cadence), and message loss during a KMS get_key_with_id claim (the wire
// adapters' retransmit-idempotent dialogue fulfills the claim exactly
// once, and the claim-TTL ledger still expires what nobody claims).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/kms/wire_service.hpp"
#include "src/net/channel_transport.hpp"
#include "src/network/key_service.hpp"
#include "src/sim/scenario.hpp"

namespace qkd {
namespace {

using network::MeshSimulation;
using network::NodeId;
using network::Topology;
using namespace qkd::sim;

/// One engine-backed a-b link: the only mesh flavor with a real classical
/// channel for ClassicalImpairment to degrade.
MeshSimulation engine_pair(std::uint64_t seed) {
  Topology topo;
  const NodeId a = topo.add_node("a", network::NodeKind::kEndpoint);
  const NodeId b = topo.add_node("b", network::NodeKind::kEndpoint);
  topo.add_link(a, b, {});
  network::LinkKeyService::Config engine;
  engine.proto.auth_replenish_bits = 0;
  engine.threads = 1;
  return MeshSimulation(std::move(topo), seed, engine);
}

TEST(CorpusWire, LatencySpikeMidCascadeStallsTheDialogueThenRecovers) {
  // The story: distillation hums along, an operator reroutes the control
  // network at t=6s and every classical frame suddenly pays 2 ms one way
  // — right through the chattiest stage, Cascade's parity ping-pong, whose
  // ~thousand lockstep messages turn that into seconds of stall per batch.
  // At t=14s the spike clears. The link must keep completing batches
  // through the whole episode (stall, never deadlock), and the spike
  // window must visibly depress the batch cadence the self-pacing
  // timeline records.
  constexpr std::uint64_t kSeed = 29;
  MeshSimulation clean_mesh = engine_pair(kSeed);
  ScenarioRunner clean_runner{Scenario{}};
  clean_runner.attach_mesh(clean_mesh);
  clean_runner.run(20 * kSecond);
  const auto& clean = clean_mesh.key_service()->session(0).totals();
  ASSERT_GT(clean.batches, 10u);

  MeshSimulation mesh = engine_pair(kSeed);
  Scenario story;
  story.at(6 * kSecond, ClassicalImpairment{0, 2 * kMillisecond, 0.0, 0.0})
      .at(14 * kSecond, ClassicalImpairment{0});  // spike clears
  ScenarioRunner runner(std::move(story));
  runner.attach_mesh(mesh);
  runner.run(20 * kSecond);

  const auto& totals = mesh.key_service()->session(0).totals();
  // Stalled, not stalled-out: fewer Qframes fit the same horizon, but
  // batches kept completing and key kept landing in the pool.
  EXPECT_LT(totals.batches, clean.batches);
  EXPECT_GT(totals.batches, clean.batches / 2);
  EXPECT_GT(totals.accepted_batches, 0u);
  EXPECT_GT(mesh.link_pool_bits(0), 0.0);
  // The stall the dialogue paid is on the books: latency x messages of
  // wall-clock per spiked batch, so the mean batch got slower even though
  // fewer batches ran.
  EXPECT_GT(totals.duration_s / static_cast<double>(totals.batches),
            clean.duration_s / static_cast<double>(clean.batches));
  // The spike was lifted: the channel ends the day clean.
  const auto& channel = mesh.key_service()->session(0).channel();
  EXPECT_EQ(channel.conditions().latency, 0);
}

/// Client-side transport that pumps the server whenever the client's inbox
/// is drained — the single-threaded stand-in for a server process on the
/// far side of the lossy channel.
class ServedChannel final : public wire::Transport {
 public:
  ServedChannel(net::PublicChannel& channel, kms::KmsWireServer& server)
      : client_side_(channel, net::ChannelTransport::Side::kA),
        server_side_(channel, net::ChannelTransport::Side::kB),
        server_(server) {}

  bool send_frame(const Bytes& frame) override {
    return client_side_.send_frame(frame);
  }

  std::optional<Bytes> recv_frame() override {
    if (auto ready = client_side_.recv_frame()) return ready;
    server_.serve_one(server_side_);
    return client_side_.recv_frame();
  }

 private:
  net::ChannelTransport client_side_;
  net::ChannelTransport server_side_;
  kms::KmsWireServer& server_;
};

TEST(CorpusWire, LossDuringGetKeyWithIdFulfillsOnceAndTtlStillExpires) {
  // The story: alice's gateway draws two keys; bob's gateway claims the
  // first over a classical path losing 30 % of frames — retransmits and
  // the server's duplicate cache must make that claim land exactly once.
  // Nobody ever claims the second key, and the TTL ledger reclaims it on
  // schedule even though the wire stayed noisy the whole time.
  Topology star;
  const NodeId relay = star.add_node("relay", network::NodeKind::kTrustedRelay);
  const NodeId a = star.add_node("a", network::NodeKind::kEndpoint);
  const NodeId b = star.add_node("b", network::NodeKind::kEndpoint);
  qkd::optics::LinkParams optics;
  optics.fiber_km = 1.0;
  optics.pulse_rate_hz = 1e9;
  star.add_link(relay, a, optics);
  star.add_link(relay, b, optics);
  MeshSimulation mesh(std::move(star), 77);
  mesh.step(20.0);  // supply never bounds this story

  qkd::SimClock clock;
  sim::EventScheduler scheduler(clock);
  kms::KeyManagementService::Config config;
  config.claim_ttl = 5 * kSecond;
  kms::KeyManagementService service(mesh, scheduler, config);
  kms::KmsWireServer server(service, scheduler);
  net::PublicChannel channel;
  ServedChannel io(channel, server);
  kms::KmsWireClient client(io);

  const auto alice = client.register_app("alice-gw", 1, 2);
  const auto bob = client.register_app("bob-gw", 2, 1);
  ASSERT_TRUE(alice.has_value());
  ASSERT_TRUE(bob.has_value());

  // The weather turns: 30 % of frames drown, both directions.
  net::ClassicalConditions lossy;
  lossy.loss_prob = 0.3;
  channel.set_conditions(lossy, /*seed=*/2003);

  const auto first = client.get_key(*alice, 256);
  const auto second = client.get_key(*alice, 256);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  ASSERT_EQ(first->status, kms::GrantStatus::kGranted);
  ASSERT_EQ(second->status, kms::GrantStatus::kGranted);

  const std::size_t sent_before_claim = client.messages_sent();
  const auto claimed = client.get_key_with_id(*bob, first->key_id);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_TRUE(claimed->bits == first->bits);

  // The loss was real (the dialogue retransmitted its way through)...
  EXPECT_GT(channel.stats().lost, 0u);
  EXPECT_GE(client.messages_sent() - sent_before_claim, 1u);
  // ...yet the claim executed exactly once: retransmitted duplicates were
  // answered from the server's reply cache, not re-run.
  EXPECT_EQ(service.stats().claims_fulfilled, 1u);

  // The unclaimed second key rides the TTL ledger out: past claim_ttl the
  // copy expires, its bits go back into both pools, and a late claim over
  // the still-lossy wire is cleanly refused.
  scheduler.run_until(clock.now() + config.claim_ttl + kSecond);
  const auto late = client.get_key_with_id(*bob, second->key_id);
  EXPECT_FALSE(late.has_value());
  EXPECT_EQ(service.stats().claims_expired, 1u);
  EXPECT_EQ(service.stats().bits_reclaimed, 256u);
  EXPECT_EQ(service.stats().claims_fulfilled, 1u);  // still exactly once
}

}  // namespace
}  // namespace qkd
