// Scenario corpus — workload stories on the KMS. Flash crowds against
// admission control, mass departures, drought-under-load shedding order,
// degraded-but-not-denied reroutes and staggered cohorts, each a scripted
// day checked with TimelineExpect plus the service's own counters.
#include <gtest/gtest.h>

#include "src/kms/client_fleet.hpp"
#include "src/kms/kms.hpp"
#include "src/sim/expect.hpp"
#include "src/sim/scenario.hpp"

namespace qkd::kms {
namespace {

using network::MeshSimulation;
using network::Topology;
using namespace qkd::sim;

/// relay_ring(6) with hot optics (~tens of kb/s distilled per link):
/// endpoints are nodes 6 (alice) and 7 (bob).
MeshSimulation hot_ring(std::uint64_t seed) {
  Topology topo = Topology::relay_ring(6);
  for (const network::Link& link : topo.links())
    topo.link(link.id).optics.pulse_rate_hz = 1e8;
  return MeshSimulation(std::move(topo), seed);
}

/// The common KMS-on-a-scenario harness: runner + service + fleet wired to
/// one scheduler, service samples on the recorder.
struct KmsHarness {
  MeshSimulation mesh;
  ScenarioRunner runner;
  KeyManagementService kms;
  KmsClientFleet fleet;

  KmsHarness(std::uint64_t seed, Scenario scenario,
             KeyManagementService::Config kms_config)
      : mesh(hot_ring(seed)),
        runner(std::move(scenario)),
        kms(mesh, runner.scheduler(), kms_config),
        fleet(kms, runner.scheduler()) {
    runner.attach_mesh(mesh);
    runner.attach_client_driver(fleet);
    runner.recorder().attach_service(kms);
  }
};

/// Drought-flavoured service policy: shed after two starved rounds so a
/// 20-second outage reliably reaches the shedding machinery.
KeyManagementService::Config drought_config() {
  KeyManagementService::Config config;
  config.shed_after_starved_rounds = 2;
  config.retry_backoff = 500 * kMillisecond;
  return config;
}

TEST(CorpusWorkload, FlashCrowdHitsAdmissionControlNotCollapse) {
  Scenario day;
  // A flash crowd: 40 interactive clients land at once, each firing 10 Hz.
  day.at(kSecond, ClientArrival{6, 7, /*qos=*/1, /*count=*/40,
                                /*request_rate_hz=*/10.0, /*bits=*/128});

  KeyManagementService::Config config;
  config.max_queue_per_class = 2;  // tight admission: push back, don't queue
  KmsHarness h(41, std::move(day), config);
  h.runner.run(30 * kSecond);

  const auto& interactive = h.kms.class_stats(QosClass::kInteractive);
  EXPECT_GT(interactive.rejected_queue_full, 0u)
      << "the crowd must hit admission control";
  EXPECT_GT(interactive.granted, 100u) << "...but admitted work is served";

  TimelineExpect expect(h.runner);
  expect.class_never_shed("interactive")  // rejection is not shedding
      .class_never_shed("realtime")
      .class_queue_at_most_by("interactive", 2, 29 * kSecond);
  QKD_EXPECT_TIMELINE(expect);
  EXPECT_EQ(h.fleet.stats().claims_mismatched, 0u);
}

TEST(CorpusWorkload, MassDepartureQuiescesTheService) {
  Scenario day;
  day.at(kSecond, ClientArrival{6, 7, /*qos=*/0, /*count=*/8,
                                /*request_rate_hz=*/2.0, /*bits=*/128});
  day.at(2 * kSecond, ClientArrival{6, 7, /*qos=*/2, /*count=*/12,
                                    /*request_rate_hz=*/2.0, /*bits=*/128});
  // Everyone logs off in one instant.
  day.at(20 * kSecond, ClientDeparture{6, 7, /*qos=*/0, /*count=*/8});
  day.at(20 * kSecond, ClientDeparture{6, 7, /*qos=*/2, /*count=*/12});

  KmsHarness h(42, std::move(day), KeyManagementService::Config());
  h.runner.run(40 * kSecond);

  EXPECT_EQ(h.fleet.active_clients(), 0u);
  EXPECT_EQ(h.kms.client_count(), 0u);
  EXPECT_EQ(h.kms.queue_depth(QosClass::kRealtime), 0u);
  EXPECT_EQ(h.kms.queue_depth(QosClass::kBulk), 0u);

  TimelineExpect expect(h.runner);
  expect.class_queue_at_most_by("realtime", 0, 25 * kSecond)
      .class_queue_at_most_by("bulk", 0, 25 * kSecond)
      .noted("ClientDeparture");
  QKD_EXPECT_TIMELINE(expect);
}

TEST(CorpusWorkload, DroughtUnderLoadShedsStrictlyUpward) {
  Scenario day;
  day.at(kSecond, ClientArrival{6, 7, /*qos=*/0, /*count=*/4,
                                /*request_rate_hz=*/2.0, /*bits=*/128});
  day.at(kSecond, ClientArrival{6, 7, /*qos=*/1, /*count=*/6,
                                /*request_rate_hz=*/2.0, /*bits=*/128});
  day.at(kSecond, ClientArrival{6, 7, /*qos=*/2, /*count=*/8,
                                /*request_rate_hz=*/2.0, /*bits=*/128});
  // Eve camps on the tail link: total drought for the pair.
  day.at(15 * kSecond, StartEavesdrop{6, 1.0});
  day.at(35 * kSecond, StopEavesdrop{6});

  KmsHarness h(43, std::move(day), drought_config());
  h.runner.run(60 * kSecond);

  TimelineExpect expect(h.runner);
  expect.class_never_shed("realtime")
      .class_shed_by("bulk", 35 * kSecond)
      .shed_order("bulk", "interactive")
      .grant_rate_recovers("realtime", 15 * kSecond, 45 * kSecond, 0.5);
  QKD_EXPECT_TIMELINE(expect);
  EXPECT_GT(h.kms.stats().starved_rounds, 0u);
  EXPECT_EQ(h.kms.class_stats(QosClass::kRealtime).shed, 0u);
}

TEST(CorpusWorkload, RingTapOnlyDegradesServiceNeverDeniesIt) {
  Scenario day;
  day.at(kSecond, ClientArrival{6, 7, /*qos=*/0, /*count=*/4,
                                /*request_rate_hz=*/2.0, /*bits=*/128});
  day.at(kSecond, ClientArrival{6, 7, /*qos=*/2, /*count=*/4,
                                /*request_rate_hz=*/2.0, /*bits=*/128});
  // Eve on a RING link: the mesh reroutes west, the KMS never notices.
  day.at(15 * kSecond, StartEavesdrop{0, 1.0});

  KmsHarness h(44, std::move(day), drought_config());
  h.runner.run(40 * kSecond);

  TimelineExpect expect(h.runner);
  expect.class_never_shed("realtime")
      .class_never_shed("interactive")
      .class_never_shed("bulk")
      .grant_rate_recovers("realtime", 15 * kSecond, 20 * kSecond, 0.8);
  QKD_EXPECT_TIMELINE(expect);
  EXPECT_EQ(h.kms.stats().shed_events, 0u);
  EXPECT_EQ(h.fleet.stats().claims_mismatched, 0u);
}

TEST(CorpusWorkload, StaggeredCohortsBothMakeProgress) {
  Scenario day;
  day.at(kSecond, ClientArrival{6, 7, /*qos=*/2, /*count=*/6,
                                /*request_rate_hz=*/3.0, /*bits=*/256});
  // Realtime joins mid-run against an established bulk backlog.
  day.at(10 * kSecond, ClientArrival{6, 7, /*qos=*/0, /*count=*/3,
                                     /*request_rate_hz=*/3.0, /*bits=*/128});

  KmsHarness h(45, std::move(day), KeyManagementService::Config());
  h.runner.run(30 * kSecond);

  const auto& rt = h.kms.class_stats(QosClass::kRealtime);
  const auto& bulk = h.kms.class_stats(QosClass::kBulk);
  EXPECT_GT(rt.granted, 50u);
  EXPECT_GT(bulk.granted, 50u) << "fair share: bulk is not starved";

  TimelineExpect expect(h.runner);
  expect.class_never_shed("realtime")
      .class_never_shed("bulk")
      .class_queue_at_most_by("realtime", 3, 29 * kSecond);
  QKD_EXPECT_TIMELINE(expect);
  EXPECT_EQ(h.fleet.stats().claims_matched, h.fleet.stats().granted);
}

TEST(CorpusWorkload, DepartureMidDroughtDrainsTheBacklogAsDeparted) {
  Scenario day;
  day.at(kSecond, ClientArrival{6, 7, /*qos=*/2, /*count=*/10,
                                /*request_rate_hz=*/2.0, /*bits=*/128});
  day.at(10 * kSecond, StartEavesdrop{6, 1.0});  // drought: bulk backlogs
  day.at(20 * kSecond, ClientDeparture{6, 7, /*qos=*/2, /*count=*/10});
  day.at(30 * kSecond, StopEavesdrop{6});

  KmsHarness h(46, std::move(day), drought_config());
  h.runner.run(45 * kSecond);

  EXPECT_EQ(h.fleet.active_clients(), 0u);
  const auto& bulk = h.kms.class_stats(QosClass::kBulk);
  EXPECT_GT(bulk.departed + bulk.shed, 0u)
      << "the drought backlog must be drained, not leaked";
  EXPECT_EQ(h.kms.queue_depth(QosClass::kBulk), 0u);

  TimelineExpect expect(h.runner);
  expect.class_queue_at_most_by("bulk", 0, 35 * kSecond);
  QKD_EXPECT_TIMELINE(expect);
}

}  // namespace
}  // namespace qkd::kms
