// Randomized scenario fuzzing, short (tier-1) budget: a 500-case campaign
// of seeded random topologies + legal action sequences, every global
// invariant checked after every event. Failures print the seed and the
// minimized action script; QKD_FUZZ_CASES overrides the budget.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <variant>

#include "fuzz_harness.hpp"

namespace qkd::testing {
namespace {

std::size_t env_cases(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

/// Seed base of the short campaign; the long leg uses a disjoint base so
/// the two sweeps never duplicate work.
constexpr std::uint64_t kCampaignBase = 0x51900E111077ULL;

TEST(ScenarioFuzz, CampaignHoldsEveryInvariant) {
  const std::size_t cases = env_cases("QKD_FUZZ_CASES", 500);
  std::uint64_t grants = 0;
  for (std::size_t i = 0; i < cases; ++i) {
    const std::uint64_t seed = kCampaignBase + i;
    sim::ScenarioFuzzer fuzzer(seed);
    const sim::FuzzCase fuzz_case = fuzzer.generate();
    const FuzzRunResult result = run_fuzz_case(fuzz_case);
    grants += result.grants;
    ASSERT_TRUE(result.violation.empty())
        << fuzz_failure_report(fuzz_case, result.violation);
  }
  EXPECT_GT(grants, 0u) << "the campaign never exercised the KMS";
}

TEST(ScenarioFuzz, SeedReplayReproducesTheCaseExactly) {
  sim::ScenarioFuzzer first(777);
  sim::ScenarioFuzzer second(777);
  const sim::FuzzCase a = first.generate();
  const sim::FuzzCase b = second.generate();
  EXPECT_EQ(a.script(), b.script());
  EXPECT_NE(a.script().find("seed=777"), std::string::npos)
      << "the script header must name the seed a developer replays";

  const FuzzRunResult run_a = run_fuzz_case(a);
  const FuzzRunResult run_b = run_fuzz_case(b);
  EXPECT_EQ(run_a.dispatched, run_b.dispatched);
  EXPECT_EQ(run_a.grants, run_b.grants);
  EXPECT_EQ(run_a.violation, run_b.violation);
}

TEST(ScenarioFuzz, GeneratorOnlyEmitsLegalSequences) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    sim::ScenarioFuzzer fuzzer(seed);
    const sim::FuzzCase fuzz_case = fuzzer.generate();
    const auto violations =
        sim::validate_actions(fuzz_case.topology, fuzz_case.scenario);
    EXPECT_TRUE(violations.empty())
        << "seed " << seed << ": " << violations.front();
  }
}

TEST(ScenarioFuzz, ValidatorRejectsIllegalSequences) {
  const network::Topology topo = network::Topology::relay_ring(4);
  sim::Scenario bad;
  bad.at(kSecond, sim::RestoreLink{0});  // restore of an un-cut link
  bad.at(2 * kSecond,
         sim::ClientDeparture{4, 5, 1, 1});  // nobody ever arrived
  bad.at(3 * kSecond, sim::CutLink{1});
  bad.at(4 * kSecond, sim::StartEavesdrop{1, 1.0});  // tap on a cut link

  const auto violations = sim::validate_actions(topo, bad);
  ASSERT_EQ(violations.size(), 3u);
  EXPECT_NE(violations[0].find("RestoreLink"), std::string::npos);
  EXPECT_NE(violations[1].find("ClientDeparture"), std::string::npos);
  EXPECT_NE(violations[2].find("StartEavesdrop"), std::string::npos);
}

TEST(ScenarioFuzz, MinimizerShrinksABrokenInvariantToItsCause) {
  // Deliberately-broken invariant fixture: pretend "no CompromiseNode may
  // ever appear" is the violated invariant — the minimizer must strip the
  // noise and keep exactly the one offending event.
  sim::Scenario noisy;
  noisy.at(kSecond, sim::CutLink{0});
  noisy.at(2 * kSecond, sim::StartEavesdrop{1, 1.0});
  noisy.at(3 * kSecond, sim::CompromiseNode{2});
  noisy.at(4 * kSecond, sim::RestoreLink{0});
  noisy.at(5 * kSecond, sim::KeyRequest{4, 5, 64});

  const auto has_compromise = [](const sim::Scenario& scenario) {
    for (const auto& event : scenario.events())
      if (std::holds_alternative<sim::CompromiseNode>(event.action))
        return true;
    return false;
  };
  const sim::Scenario minimized = sim::minimize(noisy, has_compromise);
  ASSERT_EQ(minimized.events().size(), 1u);
  EXPECT_TRUE(
      std::holds_alternative<sim::CompromiseNode>(minimized.events()[0].action));

  // The rendered reproduction carries the seed header plus that one line.
  sim::ScenarioFuzzer fuzzer(9);
  const sim::FuzzCase fuzz_case = fuzzer.generate();
  const std::string script = fuzz_case.script_for(minimized);
  EXPECT_NE(script.find("seed=9"), std::string::npos);
  EXPECT_NE(script.find("CompromiseNode"), std::string::npos);

  // A scenario that does not fail comes back untouched.
  const sim::Scenario untouched =
      sim::minimize(noisy, [](const sim::Scenario&) { return false; });
  EXPECT_EQ(untouched.events().size(), noisy.events().size());
}

TEST(ScenarioFuzz, FailureReportNamesSeedViolationAndScript) {
  // The exact text a red campaign prints: drive the reporting path with a
  // synthetic violation on a healthy case (whose oracle then holds, so the
  // script survives minimization unchanged).
  sim::ScenarioFuzzer fuzzer(4242);
  const sim::FuzzCase fuzz_case = fuzzer.generate();
  const std::string report =
      fuzz_failure_report(fuzz_case, "synthetic violation for the report");
  EXPECT_NE(report.find("synthetic violation for the report"),
            std::string::npos);
  EXPECT_NE(report.find("ScenarioFuzzer(4242)"), std::string::npos);
  EXPECT_NE(report.find("seed=4242"), std::string::npos);
  EXPECT_NE(report.find("minimized script"), std::string::npos);
}

}  // namespace
}  // namespace qkd::testing
