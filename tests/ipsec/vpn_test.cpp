// End-to-end VPN tests: two gateways over the public channel, IKE with
// Qblock negotiation, ESP traffic, rollover, OTP tunnels, and the Section 7
// failure modes (mismatched bits, Eve's DoS on the control channel).
#include <gtest/gtest.h>

#include "tests/testing/seeded_rng.hpp"

#include "src/common/rng.hpp"
#include "src/ipsec/vpn_sim.hpp"

namespace qkd::ipsec {
namespace {

SpdEntry protect_policy(const char* name = "vpn",
                        CipherAlgo cipher = CipherAlgo::kAes128,
                        QkdMode mode = QkdMode::kHybrid) {
  SpdEntry entry;
  entry.name = name;
  entry.selector.src_prefix = parse_ipv4("10.1.0.0");
  entry.selector.src_mask = 0xffff0000;
  entry.selector.dst_prefix = parse_ipv4("10.2.0.0");
  entry.selector.dst_mask = 0xffff0000;
  entry.action = PolicyAction::kProtect;
  entry.cipher = cipher;
  entry.qkd_mode = mode;
  entry.qblocks_per_rekey = 1;
  entry.lifetime_seconds = 60.0;
  return entry;
}

IpPacket red_packet(int tag = 0) {
  IpPacket packet;
  packet.src = parse_ipv4("10.1.0.5");
  packet.dst = parse_ipv4("10.2.0.7");
  packet.payload = Bytes{static_cast<std::uint8_t>('h'),
                         static_cast<std::uint8_t>('i'),
                         static_cast<std::uint8_t>(tag)};
  return packet;
}

VpnLinkSimulation make_vpn(std::uint64_t seed = 1,
                           SpdEntry policy = protect_policy()) {
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, seed);
  vpn.install_mirrored_policy(policy);
  ::qkd::testing::SeededRng rng(seed ^ 0x9e3779b9ULL);
  vpn.deposit_key_material(rng.next_bits(64 * 1024));
  vpn.start();
  return vpn;
}

TEST(Vpn, TunnelEstablishesAndCarriesTraffic) {
  auto vpn = make_vpn(1);
  vpn.a().submit_plaintext(red_packet(1), vpn.clock().now());
  vpn.advance(1.0);
  const auto delivered = vpn.b().drain_delivered();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], red_packet(1));
  EXPECT_GE(vpn.a().stats().esp_sent, 1u);
  EXPECT_GE(vpn.b().stats().esp_received, 1u);
}

TEST(Vpn, TrafficFlowsBothWays) {
  auto vpn = make_vpn(2);
  vpn.a().submit_plaintext(red_packet(1), vpn.clock().now());
  vpn.advance(1.0);
  IpPacket reverse;
  reverse.src = parse_ipv4("10.2.0.7");
  reverse.dst = parse_ipv4("10.1.0.5");
  reverse.payload = {9, 9};
  vpn.b().submit_plaintext(reverse, vpn.clock().now());
  vpn.advance(1.0);
  const auto at_a = vpn.a().drain_delivered();
  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_a[0], reverse);
}

TEST(Vpn, PlaintextNeverOnTheWire) {
  auto vpn = make_vpn(3);
  // Snoop everything Eve sees on the public channel.
  std::vector<Bytes> snooped;
  vpn.channel().set_impairment(
      [&snooped](const Bytes& message, bool) -> std::optional<Bytes> {
        snooped.push_back(message);
        return message;
      });
  const IpPacket secret = red_packet(42);
  vpn.a().submit_plaintext(secret, vpn.clock().now());
  vpn.advance(1.0);
  ASSERT_EQ(vpn.b().drain_delivered().size(), 1u);
  const Bytes inner_wire = secret.serialize();
  for (const Bytes& message : snooped) {
    const auto hit = std::search(message.begin(), message.end(),
                                 inner_wire.begin(), inner_wire.end());
    EXPECT_EQ(hit, message.end()) << "inner packet leaked in the clear";
  }
}

TEST(Vpn, QblocksAreConsumedByNegotiation) {
  auto vpn = make_vpn(4);
  vpn.a().submit_plaintext(red_packet(), vpn.clock().now());
  vpn.advance(1.0);
  EXPECT_GE(vpn.a().ike().stats().qblocks_consumed, 1u);
  EXPECT_GE(vpn.b().ike().stats().qblocks_consumed, 1u);
  EXPECT_GE(vpn.a().key_pool().stats().qblocks_withdrawn, 1u);
}

TEST(Vpn, KeyRolloverHappensAboutOncePerLifetime) {
  // "At present we use these keys as input to the IPsec Phase 2 hash, and
  // update the resultant AES keys about once a minute."
  auto vpn = make_vpn(5);
  vpn.a().submit_plaintext(red_packet(), vpn.clock().now());
  vpn.advance(1.0);
  // Run 5 simulated minutes with sporadic traffic to keep the tunnel alive.
  for (int minute = 0; minute < 5; ++minute) {
    for (int i = 0; i < 6; ++i) {
      vpn.a().submit_plaintext(red_packet(i), vpn.clock().now());
      vpn.advance(10.0);
    }
  }
  EXPECT_GE(vpn.a().stats().sa_rollovers, 3u);
  EXPECT_LE(vpn.a().stats().sa_rollovers, 8u);
  // Each rollover consumed fresh Qblocks.
  EXPECT_GT(vpn.a().ike().stats().qblocks_consumed, 3u);
}

TEST(Vpn, OtpTunnelCarriesTrafficAndEatsPad) {
  auto vpn = make_vpn(6, protect_policy("otp-vpn", CipherAlgo::kOneTimePad,
                                        QkdMode::kOtp));
  const std::size_t pool_before = vpn.a().key_pool().available_bits();
  vpn.a().submit_plaintext(red_packet(1), vpn.clock().now());
  vpn.advance(1.0);
  ASSERT_EQ(vpn.b().drain_delivered().size(), 1u);
  // OTP negotiation withdrew keymat + two directions of pad.
  EXPECT_LT(vpn.a().key_pool().available_bits(), pool_before - 2048);
}

TEST(Vpn, OtpPadExhaustionForcesRollover) {
  SpdEntry policy = protect_policy("otp-vpn", CipherAlgo::kOneTimePad,
                                   QkdMode::kOtp);
  policy.lifetime_seconds = 3600.0;  // lifetime never expires in this test
  auto vpn = make_vpn(7, policy);
  // Each 1024-bit pad direction covers only ~0.8 packets of 128 bytes; a
  // burst must exhaust the pad and trigger renegotiation.
  for (int i = 0; i < 20; ++i) {
    vpn.a().submit_plaintext(red_packet(i), vpn.clock().now());
    vpn.advance(0.5);
  }
  EXPECT_GT(vpn.a().stats().otp_exhausted, 0u);
  // Traffic still flowed thanks to rollovers drawing fresh pad.
  EXPECT_GT(vpn.b().stats().delivered, 5u);
}

TEST(Vpn, MismatchedQblocksBlackoutUntilRollover) {
  // Section 7: "IKE has no mechanisms for noticing or dealing with such
  // cases. The result appears to be that all security associations that
  // employ key bits derived from this corrupted information will fail to
  // properly encrypt / decrypt traffic ... until the security association
  // is renewed."
  SpdEntry policy = protect_policy();
  policy.lifetime_seconds = 20.0;
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 8);
  vpn.install_mirrored_policy(policy);
  QKD_SEEDED_RNG(rng, 99);
  // First deposit corrupted: B's pool differs from A's by one bit inside the
  // first Qblock (deposit_key_material flips the middle bit of the deposit).
  vpn.deposit_key_material(rng.next_bits(1024), /*corrupt_b=*/true);
  // Later deposits match (the QKD stack corrected itself).
  vpn.deposit_key_material(rng.next_bits(64 * 1024));
  vpn.start();

  // Traffic during the corrupted SA generation: authentication failures.
  for (int i = 0; i < 5; ++i) {
    vpn.a().submit_plaintext(red_packet(i), vpn.clock().now());
    vpn.advance(1.0);
  }
  const auto blackout_failures = vpn.b().stats().auth_failures;
  const auto blackout_delivered = vpn.b().stats().delivered;
  EXPECT_GT(blackout_failures, 0u);
  EXPECT_EQ(blackout_delivered, 0u);

  // Ride past the SA lifetime: rollover draws matching bits; traffic heals.
  vpn.advance(25.0);
  for (int i = 0; i < 5; ++i) {
    vpn.a().submit_plaintext(red_packet(i), vpn.clock().now());
    vpn.advance(1.0);
  }
  EXPECT_GT(vpn.b().stats().delivered, 0u);
}

TEST(Vpn, EveBlockingIkeCausesTimeoutsNotKeys) {
  // Sec. 7: "this narrow window makes Eve's denial-of-service attacks
  // somewhat easier since she must block IKE messages during only a
  // relatively short time in order to bring down the security
  // association(s)."
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 9);
  vpn.install_mirrored_policy(protect_policy());
  QKD_SEEDED_RNG(rng, 9);
  vpn.deposit_key_material(rng.next_bits(32 * 1024));
  vpn.start();
  // Eve blocks everything.
  vpn.channel().set_impairment(
      [](const Bytes&, bool) -> std::optional<Bytes> { return std::nullopt; });
  vpn.a().submit_plaintext(red_packet(), vpn.clock().now());
  vpn.advance(15.0);  // beyond the 10 s Phase-2 deadline
  EXPECT_GT(vpn.a().ike().stats().phase2_timeouts, 0u);
  EXPECT_EQ(vpn.b().stats().delivered, 0u);
  // Eve relents; the next packet re-triggers negotiation and flows.
  vpn.channel().set_impairment(nullptr);
  vpn.a().submit_plaintext(red_packet(1), vpn.clock().now());
  vpn.advance(5.0);
  EXPECT_GT(vpn.b().stats().delivered, 0u);
}

TEST(Vpn, LossyChannelRetransmitsRecover) {
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 10);
  vpn.install_mirrored_policy(protect_policy());
  QKD_SEEDED_RNG(rng, 10);
  vpn.deposit_key_material(rng.next_bits(32 * 1024));
  vpn.start();
  vpn.channel().set_impairment(qkd::net::make_drop_impairment(0.3, 10));
  bool delivered = false;
  for (int attempt = 0; attempt < 20 && !delivered; ++attempt) {
    vpn.a().submit_plaintext(red_packet(attempt), vpn.clock().now());
    vpn.advance(1.0);
    delivered = vpn.b().stats().delivered > 0;
  }
  EXPECT_TRUE(delivered);
}

TEST(Vpn, BypassAndDiscardPolicies) {
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 11);
  SpdEntry bypass;
  bypass.name = "bypass-tcp";
  bypass.selector.protocol = IpPacket::kProtoTcp;
  bypass.action = PolicyAction::kBypass;
  SpdEntry discard;
  discard.name = "discard-rest";
  discard.action = PolicyAction::kDiscard;
  vpn.a().spd().add(bypass);
  vpn.a().spd().add(discard);

  IpPacket tcp = red_packet();
  tcp.protocol = IpPacket::kProtoTcp;
  vpn.a().submit_plaintext(tcp, vpn.clock().now());
  vpn.a().submit_plaintext(red_packet(), vpn.clock().now());  // UDP: discard
  vpn.advance(0.5);
  EXPECT_EQ(vpn.a().stats().bypassed, 1u);
  EXPECT_EQ(vpn.a().stats().discarded_policy, 1u);
  // The bypassed packet arrived in the clear at B.
  const auto at_b = vpn.b().drain_delivered();
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0], tcp);
}

TEST(Vpn, NoPolicyMeansDrop) {
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 12);
  vpn.a().submit_plaintext(red_packet(), vpn.clock().now());
  EXPECT_EQ(vpn.a().stats().dropped_no_policy, 1u);
}

TEST(Vpn, HybridModeDegradesGracefullyOnEmptyPool) {
  // With an empty pool a kHybrid tunnel still negotiates (0 Qblocks granted,
  // logged as degraded) — availability over pure-QKD keying.
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 13);
  vpn.install_mirrored_policy(protect_policy());
  vpn.start();  // note: no deposit_key_material
  vpn.a().submit_plaintext(red_packet(), vpn.clock().now());
  vpn.advance(2.0);
  EXPECT_EQ(vpn.b().drain_delivered().size(), 1u);
  EXPECT_GT(vpn.b().ike().stats().degraded_negotiations, 0u);
}

TEST(Vpn, OtpModeRefusesOnEmptyPool) {
  // A pure one-time-pad tunnel must NOT come up without pad material.
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 14);
  vpn.install_mirrored_policy(
      protect_policy("otp", CipherAlgo::kOneTimePad, QkdMode::kOtp));
  vpn.start();
  vpn.a().submit_plaintext(red_packet(), vpn.clock().now());
  vpn.advance(2.0);
  EXPECT_EQ(vpn.b().drain_delivered().size(), 0u);
  EXPECT_GT(vpn.a().ike().stats().failed_otp_negotiations, 0u);
}

TEST(Vpn, TripleDesTunnelWorks) {
  auto vpn = make_vpn(15, protect_policy("3des", CipherAlgo::kTripleDes));
  vpn.a().submit_plaintext(red_packet(3), vpn.clock().now());
  vpn.advance(1.0);
  const auto delivered = vpn.b().drain_delivered();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], red_packet(3));
}

TEST(Vpn, ConcurrentOppositeRekeysStayInLockstep) {
  // Both gateways initiate Phase 2 simultaneously, round after round,
  // across several SA lifetimes. KeySupply lane ownership (initiator lane
  // by address order) keeps the mirrored supplies consuming disjoint
  // blocks in lockstep: every SA decrypts, zero authentication failures.
  SpdEntry policy = protect_policy();
  policy.lifetime_seconds = 10.0;
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 18);
  vpn.install_mirrored_policy(policy);
  QKD_SEEDED_RNG(rng, 18);
  vpn.deposit_key_material(rng.next_bits(128 * 1024));
  vpn.start();

  IpPacket reverse;
  reverse.src = parse_ipv4("10.2.0.7");
  reverse.dst = parse_ipv4("10.1.0.5");
  reverse.payload = {7, 7};

  for (int round = 0; round < 12; ++round) {
    // Submit on both ends before any message exchange: both daemons start
    // a Phase-2 negotiation for the (expired) SA at the same instant, so
    // the two negotiations cross on the wire.
    vpn.a().submit_plaintext(red_packet(round), vpn.clock().now());
    vpn.b().submit_plaintext(reverse, vpn.clock().now());
    vpn.advance(11.0);  // past the lifetime: the next round renegotiates
  }

  // Each end acted as initiator of one direction and responder of the
  // other, repeatedly.
  EXPECT_GT(vpn.a().ike().stats().phase2_initiated, 3u);
  EXPECT_GT(vpn.a().ike().stats().phase2_responded, 3u);
  EXPECT_GT(vpn.b().ike().stats().phase2_initiated, 3u);
  EXPECT_GT(vpn.b().ike().stats().phase2_responded, 3u);
  // Lockstep: identical consumption on both ends, keys always matched.
  EXPECT_EQ(vpn.a().ike().stats().qblocks_consumed,
            vpn.b().ike().stats().qblocks_consumed);
  EXPECT_EQ(vpn.a().key_pool().available_bits(),
            vpn.b().key_pool().available_bits());
  EXPECT_EQ(vpn.a().stats().auth_failures, 0u);
  EXPECT_EQ(vpn.b().stats().auth_failures, 0u);
  EXPECT_GT(vpn.a().stats().delivered, 5u);
  EXPECT_GT(vpn.b().stats().delivered, 5u);
}

TEST(Vpn, ReplenishedSupplyWakesStalledNegotiationWithoutNewTraffic) {
  // Starvation is an event, not a poll: an OTP negotiation that stalled on
  // an empty supply restarts when the deposit arrives — no fresh red-side
  // packet needed to re-trigger it.
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 19);
  vpn.install_mirrored_policy(
      protect_policy("otp", CipherAlgo::kOneTimePad, QkdMode::kOtp));
  vpn.start();
  vpn.a().submit_plaintext(red_packet(1), vpn.clock().now());
  vpn.advance(2.0);
  // Stalled: the pool is empty, the offer could not even be made.
  EXPECT_EQ(vpn.b().drain_delivered().size(), 0u);
  EXPECT_GT(vpn.a().stats().supply_exhausted, 0u);
  EXPECT_GT(vpn.a().ike().stats().failed_otp_negotiations, 0u);

  // The QKD layer catches up; the replenish callback wakes the stalled
  // negotiation on the next tick.
  QKD_SEEDED_RNG(rng, 19);
  vpn.deposit_key_material(rng.next_bits(64 * 1024));
  vpn.advance(2.0);
  EXPECT_GT(vpn.a().stats().supply_replenished, 0u);
  const auto delivered = vpn.b().drain_delivered();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], red_packet(1));
}

TEST(Vpn, WakeupStaysArmedWhenReplenishmentIsStillTooSmall) {
  // kReplenished is edge-triggered on the low-water crossing. If the
  // crossing happens with less key than the stalled OTP offer needs, the
  // wakeup must stay armed so the later (non-crossing) deposits still get
  // the negotiation going.
  VpnLinkSimulation::Params params;
  params.supply_low_water_bits = 2048;
  VpnLinkSimulation vpn(params, 20);
  vpn.install_mirrored_policy(
      protect_policy("otp", CipherAlgo::kOneTimePad, QkdMode::kOtp));
  vpn.start();
  vpn.a().submit_plaintext(red_packet(2), vpn.clock().now());
  vpn.advance(2.0);
  ASSERT_EQ(vpn.b().drain_delivered().size(), 0u);  // stalled, empty pool

  // Crosses the mark (fires kReplenished) but holds only 2 blocks in the
  // initiator's lane — the OTP offer needs 3.
  QKD_SEEDED_RNG(rng, 20);
  vpn.deposit_key_material(rng.next_bits(3 * 1024));
  vpn.advance(1.0);
  EXPECT_GT(vpn.a().stats().supply_replenished, 0u);
  EXPECT_EQ(vpn.b().drain_delivered().size(), 0u);  // still short

  // This deposit does not produce another crossing (already above the
  // mark), yet the still-armed wakeup must pick it up.
  vpn.deposit_key_material(rng.next_bits(16 * 1024));
  vpn.advance(2.0);
  const auto delivered = vpn.b().drain_delivered();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], red_packet(2));
}

TEST(Vpn, ReplayedEspPacketsAreDropped) {
  // Eve captures every A->B message and replays the lot afterwards.
  VpnLinkSimulation vpn2(VpnLinkSimulation::Params{}, 17);
  vpn2.install_mirrored_policy(protect_policy());
  QKD_SEEDED_RNG(rng, 17);
  vpn2.deposit_key_material(rng.next_bits(32 * 1024));
  vpn2.start();
  std::vector<Bytes> captured;
  vpn2.channel().set_impairment(
      [&captured](const Bytes& message, bool to_b) -> std::optional<Bytes> {
        if (to_b) captured.push_back(message);
        return message;
      });
  vpn2.a().submit_plaintext(red_packet(1), vpn2.clock().now());
  vpn2.advance(1.0);
  ASSERT_EQ(vpn2.b().drain_delivered().size(), 1u);
  // Replay everything Eve captured.
  for (const Bytes& message : captured)
    vpn2.b().deliver_from_network(message, vpn2.clock().now());
  EXPECT_EQ(vpn2.b().drain_delivered().size(), 0u);
  EXPECT_GT(vpn2.b().stats().replay_drops, 0u);
}

}  // namespace
}  // namespace qkd::ipsec
