#include "src/ipsec/ip_packet.hpp"

#include <gtest/gtest.h>

namespace qkd::ipsec {
namespace {

TEST(Ipv4Address, ParseAndFormatRoundTrip) {
  EXPECT_EQ(parse_ipv4("192.1.99.34"), 0xC0016322u);
  EXPECT_EQ(format_ipv4(0xC0016322u), "192.1.99.34");
  EXPECT_EQ(parse_ipv4("0.0.0.0"), 0u);
  EXPECT_EQ(parse_ipv4("255.255.255.255"), 0xFFFFFFFFu);
}

TEST(Ipv4Address, RejectsMalformed) {
  EXPECT_THROW(parse_ipv4("192.1.99"), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("192.1.99.256"), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("192.1.99.34.5"), std::invalid_argument);
  EXPECT_THROW(parse_ipv4("a.b.c.d"), std::invalid_argument);
}

TEST(IpPacket, SerializeParseRoundTrip) {
  IpPacket packet;
  packet.protocol = IpPacket::kProtoUdp;
  packet.ttl = 31;
  packet.src = parse_ipv4("10.0.0.1");
  packet.dst = parse_ipv4("10.0.1.2");
  packet.payload = {1, 2, 3, 4, 5};
  EXPECT_EQ(IpPacket::parse(packet.serialize()), packet);
}

TEST(IpPacket, EmptyPayload) {
  IpPacket packet;
  packet.src = 1;
  packet.dst = 2;
  packet.payload.clear();
  const IpPacket back = IpPacket::parse(packet.serialize());
  EXPECT_TRUE(back.payload.empty());
}

TEST(IpPacket, ChecksumIsValidOnWire) {
  IpPacket packet;
  packet.src = parse_ipv4("192.168.0.1");
  packet.dst = parse_ipv4("192.168.0.2");
  packet.payload = {0xaa};
  const Bytes wire = packet.serialize();
  EXPECT_EQ(ipv4_header_checksum(wire.data()), 0u);
}

TEST(IpPacket, CorruptedHeaderRejected) {
  IpPacket packet;
  packet.src = 1;
  packet.dst = 2;
  packet.payload = {1};
  Bytes wire = packet.serialize();
  wire[12] ^= 0x01;  // flip a src-address bit; checksum now fails
  EXPECT_THROW(IpPacket::parse(wire), std::invalid_argument);
}

TEST(IpPacket, TruncatedAndWrongVersionRejected) {
  EXPECT_THROW(IpPacket::parse(Bytes(10)), std::invalid_argument);
  IpPacket packet;
  packet.payload = {1};
  Bytes wire = packet.serialize();
  wire[0] = 0x65;  // version 6
  EXPECT_THROW(IpPacket::parse(wire), std::invalid_argument);
  wire = packet.serialize();
  wire.pop_back();  // length mismatch
  EXPECT_THROW(IpPacket::parse(wire), std::invalid_argument);
}

}  // namespace
}  // namespace qkd::ipsec
