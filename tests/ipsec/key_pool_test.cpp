#include "src/ipsec/key_pool.hpp"

#include <gtest/gtest.h>

#include "src/common/rng.hpp"

namespace qkd::ipsec {
namespace {

TEST(KeyPool, StartsEmpty) {
  KeyPool pool;
  EXPECT_EQ(pool.available_bits(), 0u);
  EXPECT_EQ(pool.available_qblocks(), 0u);
  EXPECT_FALSE(pool.withdraw_bits(1).has_value());
}

TEST(KeyPool, DepositWithdrawFifoOrder) {
  qkd::Rng rng(1);
  KeyPool pool;
  const auto bits = rng.next_bits(4096);
  pool.deposit(bits);
  const auto first = pool.withdraw_bits(1000);
  const auto second = pool.withdraw_bits(1000);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(*first, bits.slice(0, 1000));
  EXPECT_EQ(*second, bits.slice(1000, 1000));
}

TEST(KeyPool, QblockAccountingMatchesFig12Units) {
  qkd::Rng rng(2);
  KeyPool pool;
  pool.deposit(rng.next_bits(4 * KeyPool::kQblockBits + 100));
  // Four complete blocks interleave into two lanes of two.
  EXPECT_EQ(pool.available_qblocks(0), 2u);
  EXPECT_EQ(pool.available_qblocks(1), 2u);
  const auto block = pool.withdraw_qblocks(1, 0);
  ASSERT_TRUE(block.has_value());
  EXPECT_EQ(block->size(), 1024u);  // "reply 1 Qblocks 1024 bits"
  EXPECT_EQ(pool.available_qblocks(0), 1u);
  EXPECT_EQ(pool.available_qblocks(1), 2u);  // other lane untouched
}

TEST(KeyPool, LanesAreDisjointAndDeterministic) {
  // Two mirrored pools serving concurrent opposite-direction negotiations:
  // lane withdrawals must commute — any interleaving yields the same blocks.
  qkd::Rng rng(21);
  const auto stream = rng.next_bits(8 * KeyPool::kQblockBits);
  KeyPool alice, bob;
  alice.deposit(stream);
  bob.deposit(stream);
  // Alice services lane 0 then lane 1; Bob the reverse order.
  const auto a0 = alice.withdraw_qblocks(2, 0);
  const auto a1 = alice.withdraw_qblocks(1, 1);
  const auto b1 = bob.withdraw_qblocks(1, 1);
  const auto b0 = bob.withdraw_qblocks(2, 0);
  ASSERT_TRUE(a0 && a1 && b0 && b1);
  EXPECT_EQ(*a0, *b0);
  EXPECT_EQ(*a1, *b1);
  // Lane 0 got absolute blocks 0 and 2; lane 1 got block 1.
  EXPECT_EQ(*a1, stream.slice(KeyPool::kQblockBits, KeyPool::kQblockBits));
}

TEST(KeyPool, MixingLinearAndLanedModesThrows) {
  qkd::Rng rng(22);
  KeyPool linear_first;
  linear_first.deposit(rng.next_bits(4096));
  ASSERT_TRUE(linear_first.withdraw_bits(10).has_value());
  EXPECT_THROW(linear_first.withdraw_qblocks(1, 0), std::logic_error);

  KeyPool laned_first;
  laned_first.deposit(rng.next_bits(4096));
  ASSERT_TRUE(laned_first.withdraw_qblocks(1, 0).has_value());
  EXPECT_THROW(laned_first.withdraw_bits(10), std::logic_error);
}

TEST(KeyPool, LaneRefusalLeavesStateIntact) {
  qkd::Rng rng(23);
  KeyPool pool;
  pool.deposit(rng.next_bits(3 * KeyPool::kQblockBits));  // lanes: 2 / 1
  EXPECT_FALSE(pool.withdraw_qblocks(2, 1).has_value());
  EXPECT_EQ(pool.available_qblocks(1), 1u);
  EXPECT_TRUE(pool.withdraw_qblocks(1, 1).has_value());
}

TEST(KeyPool, RefusesPartialWithdrawal) {
  qkd::Rng rng(3);
  KeyPool pool;
  pool.deposit(rng.next_bits(100));
  EXPECT_FALSE(pool.withdraw_bits(101).has_value());
  EXPECT_EQ(pool.available_bits(), 100u);  // untouched after refusal
  EXPECT_EQ(pool.stats().failed_withdrawals, 1u);
}

TEST(KeyPool, MirroredPoolsStayInLockstep) {
  // The property the whole Qblock design rests on: two pools fed the same
  // deposits return the same bits for the same withdrawal sequence.
  qkd::Rng rng(4);
  KeyPool a, b;
  for (int i = 0; i < 10; ++i) {
    const auto bits = rng.next_bits(500 + i * 37);
    a.deposit(bits);
    b.deposit(bits);
  }
  for (std::size_t n : {100u, 1024u, 7u, 2048u, 333u}) {
    const auto from_a = a.withdraw_bits(n);
    const auto from_b = b.withdraw_bits(n);
    ASSERT_TRUE(from_a && from_b);
    EXPECT_EQ(*from_a, *from_b);
  }
}

TEST(KeyPool, StatsTrackVolumes) {
  qkd::Rng rng(5);
  KeyPool pool;
  pool.deposit(rng.next_bits(8192));
  pool.withdraw_qblocks(2);
  EXPECT_EQ(pool.stats().bits_deposited, 8192u);
  EXPECT_EQ(pool.stats().bits_withdrawn, 2048u);
  EXPECT_EQ(pool.stats().qblocks_withdrawn, 2u);
}

TEST(KeyPool, CompactionPreservesContent) {
  // Push enough through the pool to trigger internal compaction and verify
  // the stream stays correct across it.
  qkd::Rng rng(6);
  KeyPool pool;
  qkd::BitVector reference;
  for (int i = 0; i < 40; ++i) {
    const auto bits = rng.next_bits(100000);
    pool.deposit(bits);
    reference.append(bits);
  }
  std::size_t cursor = 0;
  while (pool.available_bits() >= 70000) {
    const auto chunk = pool.withdraw_bits(70000);
    ASSERT_TRUE(chunk.has_value());
    EXPECT_EQ(*chunk, reference.slice(cursor, 70000));
    cursor += 70000;
  }
}

}  // namespace
}  // namespace qkd::ipsec
