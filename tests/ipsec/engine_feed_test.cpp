// Engine-fed VPN tests: a real QkdLinkSession (through the LinkKeyService)
// drives both gateways' key pools instead of hand-mirrored deposits,
// making the Section 7 "IKE starves when Eve suppresses distillation"
// scenario runnable end to end.
#include <gtest/gtest.h>

#include "src/ipsec/vpn_sim.hpp"

namespace qkd::ipsec {
namespace {

SpdEntry protect_policy(double lifetime_s = 60.0) {
  SpdEntry entry;
  entry.name = "vpn";
  entry.selector.src_prefix = parse_ipv4("10.1.0.0");
  entry.selector.src_mask = 0xffff0000;
  entry.selector.dst_prefix = parse_ipv4("10.2.0.0");
  entry.selector.dst_mask = 0xffff0000;
  entry.action = PolicyAction::kProtect;
  entry.cipher = CipherAlgo::kAes128;
  entry.qkd_mode = QkdMode::kHybrid;
  entry.qblocks_per_rekey = 1;
  entry.lifetime_seconds = lifetime_s;
  return entry;
}

IpPacket red_packet(int tag = 0) {
  IpPacket packet;
  packet.src = parse_ipv4("10.1.0.5");
  packet.dst = parse_ipv4("10.2.0.7");
  packet.payload = Bytes{'q', 'k', static_cast<std::uint8_t>(tag)};
  return packet;
}

/// Engine operating point for the feed: megaslot frames at a slowed
/// trigger so one batch covers ~4.2 s of simulated time (few batches per
/// test), yielding ~300 net bits each — a supply rate comfortably above
/// one 1024-bit Qblock per rekey lifetime.
qkd::proto::QkdLinkConfig feed_config() {
  qkd::proto::QkdLinkConfig config;
  config.frame_slots = 1 << 20;
  config.link.pulse_rate_hz = 0.25e6;
  config.auth_replenish_bits = 64;
  return config;
}

TEST(EngineFeed, FillsBothPoolsWithIdenticalDistilledBits) {
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 21);
  vpn.enable_engine_feed(feed_config(), /*seed=*/21);
  vpn.advance(13.0);  // ~3 engine batches

  ASSERT_NE(vpn.key_service(), nullptr);
  EXPECT_GT(vpn.key_service()->session(0).totals().accepted_batches, 0u);
  const auto& a_stats = vpn.a().key_pool().stats();
  const auto& b_stats = vpn.b().key_pool().stats();
  EXPECT_GT(a_stats.bits_deposited, 0u);
  EXPECT_EQ(a_stats.bits_deposited, b_stats.bits_deposited);
  EXPECT_EQ(vpn.a().key_pool().available_bits(),
            vpn.b().key_pool().available_bits());
  // The producer delivers to the attached gateway sinks; its own supply
  // stays idle (no hand-mirrored drain/deposit loop anywhere).
  EXPECT_EQ(vpn.key_service()->supply(0).available_bits(), 0u);
  // Both gateways hold bit-identical streams: withdrawing through the
  // supply interface yields the same bits — and, because both pools see
  // an identical call sequence here, the same key_ids.
  const auto from_a = vpn.a().key_supply().request_bits(256, "test");
  const auto from_b = vpn.b().key_supply().request_bits(256, "test");
  ASSERT_TRUE(from_a && from_b);
  EXPECT_TRUE(from_a->bits == from_b->bits);
  EXPECT_EQ(from_a->key_id, from_b->key_id);
}

TEST(EngineFeed, TunnelNegotiatesFromEngineDistilledQblocks) {
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 22);
  vpn.install_mirrored_policy(protect_policy());
  vpn.enable_engine_feed(feed_config(), /*seed=*/22);
  vpn.advance(18.0);  // distill past one full Qblock before IKE starts
  ASSERT_GT(vpn.a().key_pool().available_bits(), 1024u);

  vpn.start();
  vpn.a().submit_plaintext(red_packet(1), vpn.clock().now());
  vpn.advance(1.0);
  const auto delivered = vpn.b().drain_delivered();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], red_packet(1));
  // The keys protecting that packet were withdrawn from engine output, not
  // a hand-mirrored deposit.
  EXPECT_GE(vpn.a().ike().stats().qblocks_consumed, 1u);
  EXPECT_GE(vpn.a().key_pool().stats().qblocks_withdrawn, 1u);
  EXPECT_EQ(vpn.b().ike().stats().degraded_negotiations, 0u);
}

TEST(EngineFeed, EveSuppressingDistillationStarvesIkeRekey) {
  // Sec. 7 end to end: Eve cannot read traffic, but by attacking the
  // *quantum* channel she stops the key supply; SA rekeys then find the
  // pools dry and negotiate degraded (no quantum material) until she
  // relents and distillation refills the pools.
  VpnLinkSimulation::Params params;
  // The feed supplies ~300 bits per accepted batch, so a 512-bit low-water
  // mark makes the starvation episode observable through supply events.
  params.supply_low_water_bits = 512;
  VpnLinkSimulation vpn(params, 23);
  vpn.install_mirrored_policy(protect_policy(/*lifetime_s=*/20.0));
  vpn.enable_engine_feed(feed_config(), /*seed=*/23);
  vpn.advance(22.0);  // ~5 engine batches: comfortably past one Qblock
  ASSERT_GT(vpn.a().key_pool().available_bits(), 1024u);
  vpn.start();

  // Healthy phase: tunnel up on quantum keys.
  vpn.a().submit_plaintext(red_packet(0), vpn.clock().now());
  vpn.advance(1.0);
  ASSERT_EQ(vpn.b().drain_delivered().size(), 1u);
  const auto healthy_qblocks = vpn.a().ike().stats().qblocks_consumed;
  EXPECT_GE(healthy_qblocks, 1u);
  EXPECT_EQ(vpn.a().ike().stats().degraded_negotiations, 0u);

  // Eve on the quantum channel: every batch trips the QBER alarm.
  vpn.set_feed_attack(
      std::make_unique<qkd::optics::InterceptResendAttack>(1.0));
  const auto aborted_before =
      vpn.key_service()->session(0).totals().aborted_qber();
  // Ride out several rekey lifetimes with sporadic traffic so the SA keeps
  // renegotiating while no fresh key arrives.
  for (int i = 0; i < 16; ++i) {
    vpn.a().submit_plaintext(red_packet(i), vpn.clock().now());
    vpn.advance(6.0);
  }
  EXPECT_GT(vpn.key_service()->session(0).totals().aborted_qber(),
            aborted_before);
  EXPECT_LT(vpn.a().key_pool().available_bits(), 1024u);  // pools ran dry
  EXPECT_GT(vpn.a().ike().stats().degraded_negotiations, 0u);  // starved
  // Starvation arrived as supply events (low-water crossing on the rekey
  // that drained the pool), not as polling.
  EXPECT_GT(vpn.a().stats().supply_low_water, 0u);

  // Eve relents: distillation resumes and rekeys consume fresh Qblocks.
  vpn.set_feed_attack(nullptr);
  for (int i = 0; i < 8; ++i) {
    vpn.a().submit_plaintext(red_packet(100 + i), vpn.clock().now());
    vpn.advance(6.0);
  }
  EXPECT_GT(vpn.a().key_pool().stats().bits_deposited, 0u);
  EXPECT_GT(vpn.a().ike().stats().qblocks_consumed, healthy_qblocks);
  // The recovery crossed the low-water mark upward on both gateways.
  EXPECT_GT(vpn.a().stats().supply_replenished, 0u);
  // Through the whole starve/recover cycle the mirrored supplies consumed
  // identically and every negotiated key matched.
  EXPECT_EQ(vpn.a().key_pool().available_bits(),
            vpn.b().key_pool().available_bits());
  EXPECT_EQ(vpn.a().key_pool().stats().bits_deposited,
            vpn.b().key_pool().stats().bits_deposited);
  EXPECT_EQ(vpn.a().ike().stats().qblocks_consumed,
            vpn.b().ike().stats().qblocks_consumed);
  EXPECT_EQ(vpn.a().stats().auth_failures, 0u);
  EXPECT_EQ(vpn.b().stats().auth_failures, 0u);
}

}  // namespace
}  // namespace qkd::ipsec
