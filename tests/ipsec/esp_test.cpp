#include "src/ipsec/esp.hpp"

#include <gtest/gtest.h>

#include "tests/testing/seeded_rng.hpp"

#include "src/common/rng.hpp"

namespace qkd::ipsec {
namespace {

IpPacket sample_packet(std::size_t payload_len = 100) {
  IpPacket packet;
  packet.src = parse_ipv4("10.1.1.5");
  packet.dst = parse_ipv4("10.2.2.9");
  packet.payload.assign(payload_len, 0x5a);
  return packet;
}

SecurityAssociation make_sa(CipherAlgo cipher, std::uint64_t seed = 7) {
  ::qkd::testing::SeededRng rng(seed);  // trace-free: helper scope ends before asserts
  SecurityAssociation sa;
  sa.spi = 0xabcd0001;
  sa.cipher = cipher;
  sa.encryption_key.resize(cipher_key_bytes(cipher));
  for (auto& b : sa.encryption_key) b = static_cast<std::uint8_t>(rng.next_u64());
  sa.authentication_key.resize(20);
  for (auto& b : sa.authentication_key)
    b = static_cast<std::uint8_t>(rng.next_u64());
  if (cipher == CipherAlgo::kOneTimePad) sa.otp_pool = rng.next_bits(1 << 16);
  return sa;
}

/// A mirrored receive-side SA (same keys, fresh counters).
SecurityAssociation mirror(const SecurityAssociation& sa) {
  SecurityAssociation rx = sa;
  rx.send_seq = 0;
  rx.replay_highest = 0;
  rx.replay_window = 0;
  rx.otp_cursor = 0;
  return rx;
}

class EspCipherSweep : public ::testing::TestWithParam<CipherAlgo> {};

TEST_P(EspCipherSweep, EncapDecapRoundTrip) {
  SecurityAssociation tx = make_sa(GetParam());
  SecurityAssociation rx = mirror(tx);
  const IpPacket inner = sample_packet();
  const auto wire = esp_encapsulate(tx, inner, 42);
  ASSERT_TRUE(wire.has_value());
  const EspResult result = esp_decapsulate(rx, *wire);
  ASSERT_TRUE(result.ok()) << static_cast<int>(*result.error);
  EXPECT_EQ(*result.packet, inner);
}

TEST_P(EspCipherSweep, VariousPayloadSizes) {
  SecurityAssociation tx = make_sa(GetParam());
  SecurityAssociation rx = mirror(tx);
  for (std::size_t len : {0u, 1u, 15u, 16u, 17u, 63u, 64u, 1499u}) {
    const IpPacket inner = sample_packet(len);
    const auto wire = esp_encapsulate(tx, inner, len);
    ASSERT_TRUE(wire.has_value()) << len;
    const EspResult result = esp_decapsulate(rx, *wire);
    ASSERT_TRUE(result.ok()) << len;
    EXPECT_EQ(*result.packet, inner) << len;
  }
}

TEST_P(EspCipherSweep, CiphertextHidesPlaintext) {
  SecurityAssociation tx = make_sa(GetParam());
  IpPacket inner = sample_packet(64);
  const Bytes inner_wire = inner.serialize();
  const auto wire = esp_encapsulate(tx, inner, 9);
  ASSERT_TRUE(wire.has_value());
  // The inner bytes must not appear in the ESP payload.
  const auto it = std::search(wire->begin(), wire->end(), inner_wire.begin(),
                              inner_wire.end());
  EXPECT_EQ(it, wire->end());
}

INSTANTIATE_TEST_SUITE_P(Ciphers, EspCipherSweep,
                         ::testing::Values(CipherAlgo::kAes128,
                                           CipherAlgo::kAes256,
                                           CipherAlgo::kTripleDes,
                                           CipherAlgo::kOneTimePad),
                         [](const auto& info) {
                           return std::string(cipher_name(info.param)) == "3DES"
                                      ? "TripleDes"
                                      : std::string(
                                            cipher_name(info.param)) == "OTP"
                                            ? "Otp"
                                            : cipher_name(info.param)[4] == '1'
                                                  ? "Aes128"
                                                  : "Aes256";
                         });

TEST(Esp, TamperedPacketFailsIntegrity) {
  SecurityAssociation tx = make_sa(CipherAlgo::kAes128);
  SecurityAssociation rx = mirror(tx);
  auto wire = esp_encapsulate(tx, sample_packet(), 1);
  ASSERT_TRUE(wire.has_value());
  (*wire)[wire->size() / 2] ^= 0x40;
  const EspResult result = esp_decapsulate(rx, *wire);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(*result.error, EspError::kBadIntegrity);
}

TEST(Esp, WrongKeyFailsIntegrity) {
  // The Section 7 mismatched-bits symptom: keys derived from different
  // Qblocks fail authentication on every packet.
  SecurityAssociation tx = make_sa(CipherAlgo::kAes128, 7);
  SecurityAssociation rx = make_sa(CipherAlgo::kAes128, 8);  // different keys
  const auto wire = esp_encapsulate(tx, sample_packet(), 1);
  ASSERT_TRUE(wire.has_value());
  const EspResult result = esp_decapsulate(rx, *wire);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(*result.error, EspError::kBadIntegrity);
}

TEST(Esp, ReplayedPacketRejected) {
  SecurityAssociation tx = make_sa(CipherAlgo::kAes128);
  SecurityAssociation rx = mirror(tx);
  const auto wire = esp_encapsulate(tx, sample_packet(), 1);
  ASSERT_TRUE(wire.has_value());
  EXPECT_TRUE(esp_decapsulate(rx, *wire).ok());
  const EspResult replay = esp_decapsulate(rx, *wire);
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(*replay.error, EspError::kReplay);
}

TEST(Esp, SequenceNumbersIncrease) {
  SecurityAssociation tx = make_sa(CipherAlgo::kAes128);
  SecurityAssociation rx = mirror(tx);
  for (int i = 0; i < 5; ++i) {
    const auto wire = esp_encapsulate(tx, sample_packet(), i);
    ASSERT_TRUE(wire.has_value());
    EXPECT_TRUE(esp_decapsulate(rx, *wire).ok()) << i;
  }
  EXPECT_EQ(tx.send_seq, 5u);
  EXPECT_EQ(rx.replay_highest, 5u);
}

TEST(Esp, OtpConsumesPadProportionally) {
  SecurityAssociation tx = make_sa(CipherAlgo::kOneTimePad);
  const std::size_t before = tx.otp_bits_available();
  const IpPacket inner = sample_packet(100);
  const auto wire = esp_encapsulate(tx, inner, 1);
  ASSERT_TRUE(wire.has_value());
  // Pad consumed = padded inner packet size (bits).
  const std::size_t consumed = before - tx.otp_bits_available();
  EXPECT_GE(consumed, (inner.total_length() + 2) * 8);
  EXPECT_LT(consumed, (inner.total_length() + 10) * 8);
}

TEST(Esp, OtpExhaustionRefusesToSend) {
  SecurityAssociation tx = make_sa(CipherAlgo::kOneTimePad);
  tx.otp_pool = qkd::BitVector(100);  // hopelessly small pad
  const auto wire = esp_encapsulate(tx, sample_packet(), 1);
  EXPECT_FALSE(wire.has_value());
}

TEST(Esp, OtpPadNeverReused) {
  // Two packets must draw disjoint pad ranges (cursor strictly advances).
  SecurityAssociation tx = make_sa(CipherAlgo::kOneTimePad);
  const std::size_t c0 = tx.otp_cursor;
  ASSERT_TRUE(esp_encapsulate(tx, sample_packet(50), 1).has_value());
  const std::size_t c1 = tx.otp_cursor;
  ASSERT_TRUE(esp_encapsulate(tx, sample_packet(50), 2).has_value());
  const std::size_t c2 = tx.otp_cursor;
  EXPECT_GT(c1, c0);
  EXPECT_GT(c2, c1);
}

TEST(Esp, MalformedWireRejected) {
  SecurityAssociation rx = make_sa(CipherAlgo::kAes128);
  const EspResult result = esp_decapsulate(rx, Bytes(10));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(*result.error, EspError::kMalformed);
}

TEST(Esp, ByteCountersDriveLifetime) {
  SecurityAssociation tx = make_sa(CipherAlgo::kAes128);
  tx.lifetime_seconds = 0.0;
  tx.lifetime_bytes = 500;
  ASSERT_TRUE(esp_encapsulate(tx, sample_packet(100), 1).has_value());
  EXPECT_FALSE(tx.expired(0));
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(esp_encapsulate(tx, sample_packet(100), i).has_value());
  EXPECT_TRUE(tx.expired(0));  // > 500 bytes protected
}

}  // namespace
}  // namespace qkd::ipsec
