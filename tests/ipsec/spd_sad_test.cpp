#include <gtest/gtest.h>

#include "src/ipsec/sad.hpp"
#include "src/ipsec/spd.hpp"

namespace qkd::ipsec {
namespace {

IpPacket make_packet(const std::string& src, const std::string& dst,
                     std::uint8_t proto = IpPacket::kProtoUdp) {
  IpPacket packet;
  packet.src = parse_ipv4(src);
  packet.dst = parse_ipv4(dst);
  packet.protocol = proto;
  return packet;
}

TrafficSelector subnet_selector(const std::string& src_net,
                                const std::string& dst_net) {
  TrafficSelector sel;
  sel.src_prefix = parse_ipv4(src_net);
  sel.src_mask = 0xffffff00;
  sel.dst_prefix = parse_ipv4(dst_net);
  sel.dst_mask = 0xffffff00;
  return sel;
}

TEST(TrafficSelector, SubnetMatching) {
  const TrafficSelector sel = subnet_selector("10.1.1.0", "10.2.2.0");
  EXPECT_TRUE(sel.matches(make_packet("10.1.1.7", "10.2.2.200")));
  EXPECT_FALSE(sel.matches(make_packet("10.1.2.7", "10.2.2.200")));
  EXPECT_FALSE(sel.matches(make_packet("10.1.1.7", "10.3.2.200")));
}

TEST(TrafficSelector, ProtocolFilter) {
  TrafficSelector sel;  // wildcard addresses
  sel.protocol = IpPacket::kProtoTcp;
  EXPECT_TRUE(sel.matches(make_packet("1.2.3.4", "5.6.7.8", IpPacket::kProtoTcp)));
  EXPECT_FALSE(sel.matches(make_packet("1.2.3.4", "5.6.7.8", IpPacket::kProtoUdp)));
}

TEST(Spd, FirstMatchWins) {
  SecurityPolicyDatabase spd;
  SpdEntry discard;
  discard.name = "discard-tcp";
  discard.selector.protocol = IpPacket::kProtoTcp;
  discard.action = PolicyAction::kDiscard;
  spd.add(discard);
  SpdEntry protect;
  protect.name = "protect-all";
  protect.action = PolicyAction::kProtect;
  spd.add(protect);

  const SpdEntry* hit = spd.lookup(make_packet("1.1.1.1", "2.2.2.2",
                                               IpPacket::kProtoTcp));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->name, "discard-tcp");
  hit = spd.lookup(make_packet("1.1.1.1", "2.2.2.2", IpPacket::kProtoUdp));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->name, "protect-all");
}

TEST(Spd, NoMatchReturnsNull) {
  SecurityPolicyDatabase spd;
  SpdEntry entry;
  entry.selector = subnet_selector("10.1.1.0", "10.2.2.0");
  spd.add(entry);
  EXPECT_EQ(spd.lookup(make_packet("172.16.0.1", "172.16.0.2")), nullptr);
}

TEST(CipherParams, KeySizes) {
  EXPECT_EQ(cipher_key_bytes(CipherAlgo::kAes128), 16u);
  EXPECT_EQ(cipher_key_bytes(CipherAlgo::kAes256), 32u);
  EXPECT_EQ(cipher_key_bytes(CipherAlgo::kTripleDes), 24u);
  EXPECT_EQ(cipher_key_bytes(CipherAlgo::kOneTimePad), 0u);
}

TEST(Sad, InstallFindRemove) {
  SecurityAssociationDatabase sad;
  SecurityAssociation sa;
  sa.spi = 0x1234;
  sad.install(sa);
  ASSERT_NE(sad.find(0x1234), nullptr);
  EXPECT_EQ(sad.find(0x9999), nullptr);
  sad.remove(0x1234);
  EXPECT_EQ(sad.find(0x1234), nullptr);
}

TEST(Sad, TimeLifetimeExpiry) {
  SecurityAssociationDatabase sad;
  SecurityAssociation sa;
  sa.spi = 1;
  sa.established_at = 0;
  sa.lifetime_seconds = 60.0;  // "about once a minute"
  sad.install(sa);
  EXPECT_TRUE(sad.expire(30 * qkd::kSecond).empty());
  const auto removed = sad.expire(61 * qkd::kSecond);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], 1u);
}

TEST(Sad, ByteLifetimeExpiry) {
  SecurityAssociationDatabase sad;
  SecurityAssociation sa;
  sa.spi = 2;
  sa.lifetime_seconds = 0.0;  // unlimited time
  sa.lifetime_bytes = 1024;   // 1 KB of traffic
  sa.bytes_protected = 2000;
  sad.install(sa);
  EXPECT_EQ(sad.expire(0).size(), 1u);
}

TEST(ReplayWindow, AcceptsInOrder) {
  SecurityAssociation sa;
  for (std::uint64_t seq = 1; seq <= 100; ++seq)
    EXPECT_TRUE(sa.replay_check_and_update(seq)) << seq;
}

TEST(ReplayWindow, RejectsReplays) {
  SecurityAssociation sa;
  EXPECT_TRUE(sa.replay_check_and_update(5));
  EXPECT_FALSE(sa.replay_check_and_update(5));
}

TEST(ReplayWindow, AcceptsBoundedReordering) {
  SecurityAssociation sa;
  EXPECT_TRUE(sa.replay_check_and_update(10));
  EXPECT_TRUE(sa.replay_check_and_update(3));   // late but within window
  EXPECT_FALSE(sa.replay_check_and_update(3));  // replay of the late packet
  EXPECT_TRUE(sa.replay_check_and_update(11));
}

TEST(ReplayWindow, RejectsAncientAndZero) {
  SecurityAssociation sa;
  EXPECT_FALSE(sa.replay_check_and_update(0));
  EXPECT_TRUE(sa.replay_check_and_update(100));
  EXPECT_FALSE(sa.replay_check_and_update(36));  // 64 behind: outside window
  EXPECT_TRUE(sa.replay_check_and_update(37));   // exactly inside
}

}  // namespace
}  // namespace qkd::ipsec
