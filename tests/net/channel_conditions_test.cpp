// Regression pins for the channel accounting the wire layer builds on:
// byte counters record what was DELIVERED (post-impairment sizes), and
// ClassicalConditions loss/reordering act on the framed byte stream with
// their own counters. The QKD session's measured control traffic and the
// scenario engine's impairments both read through these semantics.
#include <gtest/gtest.h>

#include "src/net/channel.hpp"

namespace qkd::net {
namespace {

TEST(ChannelStats, DroppedMessageDeliversNoBytes) {
  PublicChannel channel;
  channel.set_impairment(
      [](const Bytes&, bool) -> std::optional<Bytes> { return std::nullopt; });
  channel.send_from_a(Bytes(100));
  EXPECT_EQ(channel.stats().dropped, 1u);
  EXPECT_EQ(channel.stats().messages_ab, 0u);
  EXPECT_EQ(channel.stats().bytes_ab, 0u);  // a wiretap at B saw nothing
}

TEST(ChannelStats, ModifiedMessageDeliversItsModifiedSize) {
  PublicChannel channel;
  channel.set_impairment([](const Bytes&, bool) -> std::optional<Bytes> {
    return Bytes(7);  // Eve substitutes a 7-byte forgery
  });
  channel.send_from_a(Bytes(100));
  EXPECT_EQ(channel.stats().modified, 1u);
  EXPECT_EQ(channel.stats().bytes_ab, 7u);  // the forged size, not the sent
}

TEST(ChannelStats, PassthroughDeliversTheOriginalSize) {
  PublicChannel channel;
  channel.set_impairment(
      [](const Bytes& message, bool) -> std::optional<Bytes> {
        return message;
      });
  channel.send_from_a(Bytes(100));
  EXPECT_EQ(channel.stats().modified, 0u);
  EXPECT_EQ(channel.stats().bytes_ab, 100u);
}

TEST(ClassicalConditions, LossDropsAndCounts) {
  PublicChannel channel;
  ClassicalConditions conditions;
  conditions.loss_prob = 0.5;
  channel.set_conditions(conditions, /*seed=*/11);

  for (int i = 0; i < 1000; ++i) channel.send_from_a(Bytes{1});
  const auto lost = channel.stats().lost;
  EXPECT_GT(lost, 400u);
  EXPECT_LT(lost, 600u);
  // Delivered accounting matches: only surviving messages were counted.
  EXPECT_EQ(channel.stats().messages_ab, 1000u - lost);
  EXPECT_EQ(channel.stats().bytes_ab, 1000u - lost);
}

TEST(ClassicalConditions, LossIsDeterministicPerSeed) {
  const auto lost_with_seed = [](std::uint64_t seed) {
    PublicChannel channel;
    ClassicalConditions conditions;
    conditions.loss_prob = 0.3;
    channel.set_conditions(conditions, seed);
    for (int i = 0; i < 500; ++i) channel.send_from_a(Bytes{1});
    return channel.stats().lost;
  };
  EXPECT_EQ(lost_with_seed(42), lost_with_seed(42));
  EXPECT_NE(lost_with_seed(42), lost_with_seed(43));
}

TEST(ClassicalConditions, ReorderSwapsAdjacentArrivals) {
  PublicChannel channel;
  ClassicalConditions conditions;
  conditions.reorder_prob = 1.0;  // every eligible arrival swaps
  channel.set_conditions(conditions, /*seed=*/5);

  channel.send_from_a(Bytes{1});
  channel.send_from_a(Bytes{2});
  EXPECT_GE(channel.stats().reordered, 1u);
  // Both messages still arrive — reordering is not loss.
  const auto first = channel.recv_at_b();
  const auto second = channel.recv_at_b();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->size() + second->size(), 2u);
  EXPECT_NE(*first, *second);
}

TEST(ClassicalConditions, ZeroConditionsRestoreACleanChannel) {
  PublicChannel channel;
  ClassicalConditions lossy;
  lossy.loss_prob = 1.0;
  channel.set_conditions(lossy, /*seed=*/3);
  channel.send_from_a(Bytes{1});
  EXPECT_FALSE(channel.b_has_message());

  channel.set_conditions(ClassicalConditions{});  // all-zero: lifted
  channel.send_from_a(Bytes{2});
  EXPECT_EQ(channel.recv_at_b(), (Bytes{2}));
}

TEST(ClassicalConditions, LatencyIsAdvisoryAndRecorded) {
  PublicChannel channel;
  ClassicalConditions conditions;
  conditions.latency = 20 * kMillisecond;
  channel.set_conditions(conditions);
  EXPECT_EQ(channel.conditions().latency, 20 * kMillisecond);
  // The synchronous dialogue still completes: latency stalls time, it
  // never blocks delivery.
  channel.send_from_a(Bytes{9});
  EXPECT_EQ(channel.recv_at_b(), (Bytes{9}));
}

}  // namespace
}  // namespace qkd::net
