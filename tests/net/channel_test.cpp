#include "src/net/channel.hpp"

#include <gtest/gtest.h>

namespace qkd::net {
namespace {

TEST(PublicChannel, DeliversInOrderBothDirections) {
  PublicChannel channel;
  channel.send_from_a(Bytes{1});
  channel.send_from_a(Bytes{2});
  channel.send_from_b(Bytes{3});
  EXPECT_EQ(channel.recv_at_b(), (Bytes{1}));
  EXPECT_EQ(channel.recv_at_b(), (Bytes{2}));
  EXPECT_FALSE(channel.recv_at_b().has_value());
  EXPECT_EQ(channel.recv_at_a(), (Bytes{3}));
}

TEST(PublicChannel, StatsCountTraffic) {
  PublicChannel channel;
  channel.send_from_a(Bytes(10));
  channel.send_from_b(Bytes(20));
  channel.send_from_b(Bytes(30));
  EXPECT_EQ(channel.stats().messages_ab, 1u);
  EXPECT_EQ(channel.stats().messages_ba, 2u);
  EXPECT_EQ(channel.stats().bytes_ab, 10u);
  EXPECT_EQ(channel.stats().bytes_ba, 50u);
}

TEST(PublicChannel, EveCanBlock) {
  PublicChannel channel;
  channel.set_impairment(
      [](const Bytes&, bool) -> std::optional<Bytes> { return std::nullopt; });
  channel.send_from_a(Bytes{1});
  EXPECT_FALSE(channel.b_has_message());
  EXPECT_EQ(channel.stats().dropped, 1u);
}

TEST(PublicChannel, EveCanForge) {
  PublicChannel channel;
  channel.set_impairment(
      [](const Bytes&, bool) -> std::optional<Bytes> {
        return Bytes{0xEE, 0xEE};  // wholesale replacement
      });
  channel.send_from_a(Bytes{1, 2, 3});
  EXPECT_EQ(channel.recv_at_b(), (Bytes{0xEE, 0xEE}));
  EXPECT_EQ(channel.stats().modified, 1u);
}

TEST(PublicChannel, EveSeesDirection) {
  PublicChannel channel;
  std::vector<bool> directions;
  channel.set_impairment(
      [&directions](const Bytes& message, bool to_b) -> std::optional<Bytes> {
        directions.push_back(to_b);
        return message;
      });
  channel.send_from_a(Bytes{1});
  channel.send_from_b(Bytes{2});
  EXPECT_EQ(directions, (std::vector<bool>{true, false}));
}

TEST(PublicChannel, DropImpairmentIsProbabilistic) {
  PublicChannel channel;
  channel.set_impairment(make_drop_impairment(0.5, 7));
  for (int i = 0; i < 1000; ++i) channel.send_from_a(Bytes{1});
  const auto dropped = channel.stats().dropped;
  EXPECT_GT(dropped, 400u);
  EXPECT_LT(dropped, 600u);
}

TEST(PublicChannel, CorruptImpairmentFlipsBytes) {
  PublicChannel channel;
  channel.set_impairment(make_corrupt_impairment(1.0, 7));
  channel.send_from_a(Bytes{1, 2, 3, 4});
  const auto received = channel.recv_at_b();
  ASSERT_TRUE(received.has_value());
  EXPECT_NE(*received, (Bytes{1, 2, 3, 4}));
  EXPECT_EQ(received->size(), 4u);
  EXPECT_EQ(channel.stats().modified, 1u);
}

TEST(PublicChannel, ClearingImpairmentRestoresDelivery) {
  PublicChannel channel;
  channel.set_impairment(make_drop_impairment(1.0, 3));
  channel.send_from_a(Bytes{1});
  channel.set_impairment(nullptr);
  channel.send_from_a(Bytes{2});
  EXPECT_EQ(channel.recv_at_b(), (Bytes{2}));
}

}  // namespace
}  // namespace qkd::net
