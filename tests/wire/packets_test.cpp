#include "src/wire/packets.hpp"

#include <gtest/gtest.h>

#include "tests/testing/seeded_rng.hpp"

namespace qkd::wire {
namespace {

/// Frame -> decode_packet must hand back exactly the packet that went in.
template <typename Packet>
Packet round_trip(const Packet& packet) {
  const Bytes framed = to_frame(packet);
  const auto frame = decode_frame(framed);
  EXPECT_TRUE(frame.ok());
  const auto decoded = decode_packet(frame.value);
  EXPECT_TRUE(decoded.ok()) << packet_type_name(Packet::kType);
  EXPECT_TRUE(std::holds_alternative<Packet>(decoded.value));
  return std::get<Packet>(decoded.value);
}

TEST(Packets, QframeFeedRoundTrips) {
  QKD_SEEDED_RNG(rng, 31);
  QframeFeed packet;
  packet.frame_id = 7;
  packet.detected = rng.next_bits(512);
  packet.bases = rng.next_bits(512);
  packet.bits = rng.next_bits(512);
  EXPECT_EQ(round_trip(packet), packet);
}

TEST(Packets, SiftAnnounceRoundTripsSparseMask) {
  // ~1% detection density: the sparse codec's home turf.
  BitVector detected(4096);
  for (std::size_t i = 0; i < detected.size(); i += 97) detected.set(i, true);
  SiftAnnounce packet;
  packet.frame_id = 42;
  packet.detected = detected;
  packet.bob_bases = BitVector(detected.popcount());  // one basis per click
  for (std::size_t i = 0; i < packet.bob_bases.size(); i += 2)
    packet.bob_bases.set(i, true);
  EXPECT_EQ(round_trip(packet), packet);

  // The sparse encoding must beat dense packing at this density.
  Bytes sparse;
  put_bits_sparse(sparse, detected);
  Bytes dense;
  put_bits_dense(dense, detected);
  EXPECT_LT(sparse.size(), dense.size());
}

TEST(Packets, SiftDecisionRoundTrips) {
  SiftDecision packet;
  packet.frame_id = 3;
  packet.keep = BitVector{1, 1, 0, 1, 0, 0, 0, 1, 1};
  EXPECT_EQ(round_trip(packet), packet);
}

TEST(Packets, SampleRevealRoundTrips) {
  QKD_SEEDED_RNG(rng, 77);
  SampleReveal packet;
  packet.frame_id = 11;
  packet.bits = rng.next_bits(101);
  EXPECT_EQ(round_trip(packet), packet);
}

TEST(Packets, ParityDialogueRoundTrips) {
  ParityRequest request;
  request.kind = 1;
  request.seed = 0xDEADBEEF;
  request.begin = 128;
  request.end = 4096;
  EXPECT_EQ(round_trip(request), request);

  ParityResponse response;
  response.parity = true;
  EXPECT_EQ(round_trip(response), response);
  response.parity = false;
  EXPECT_EQ(round_trip(response), response);
}

TEST(Packets, EcSummaryRoundTrips) {
  EcSummary packet;
  packet.corrections = 19;
  packet.converged = true;
  EXPECT_EQ(round_trip(packet), packet);
}

TEST(Packets, VerifyHashRoundTrips) {
  VerifyHash packet;
  packet.frame_id = 5;
  packet.digest.assign(20, 0xAB);
  EXPECT_EQ(round_trip(packet), packet);
}

TEST(Packets, PaParamsRoundTrips) {
  QKD_SEEDED_RNG(rng, 5);
  PaParamsPacket packet;
  packet.n = 4096;
  packet.m = 3200;
  packet.modulus_exponents = {4096, 27, 0};
  packet.multiplier = rng.next_bits(4096);
  packet.addend = rng.next_bits(3200);
  EXPECT_EQ(round_trip(packet), packet);
}

TEST(Packets, AbortAndKeyDigestRoundTrip) {
  AbortPacket abort_packet;
  abort_packet.reason = 4;
  EXPECT_EQ(round_trip(abort_packet), abort_packet);

  KeyDigest digest;
  digest.frame_id = 9;
  digest.key_bits = 2912;
  digest.digest.assign(20, 0x5C);
  EXPECT_EQ(round_trip(digest), digest);
}

TEST(Packets, EmptyBitVectorsSurvive) {
  SiftDecision packet;  // zero detections kept
  packet.frame_id = 1;
  EXPECT_EQ(round_trip(packet), packet);

  SampleReveal reveal;  // zero-bit sample
  reveal.frame_id = 2;
  EXPECT_EQ(round_trip(reveal), reveal);
}

TEST(Packets, TruncatedPayloadIsMalformed) {
  QKD_SEEDED_RNG(rng, 3);
  SiftAnnounce packet;
  packet.frame_id = 1;
  packet.detected = rng.next_bits(256);
  packet.bob_bases = rng.next_bits(100);
  Bytes payload = packet.encode();
  payload.pop_back();
  EXPECT_EQ(SiftAnnounce::decode(payload).error, WireError::kMalformedPayload);
}

TEST(Packets, TrailingPayloadBytesAreRejected) {
  EcSummary packet;
  packet.corrections = 2;
  Bytes payload = packet.encode();
  payload.push_back(0);
  EXPECT_EQ(EcSummary::decode(payload).error, WireError::kTrailingBytes);
}

TEST(Packets, SemanticallyInvalidFieldsAreMalformed) {
  // Structurally parseable, semantically impossible: a parity question
  // over an inverted range, an unknown subset kind.
  ParityRequest inverted;
  inverted.kind = 0;
  inverted.begin = 10;
  inverted.end = 3;
  EXPECT_EQ(ParityRequest::decode(inverted.encode()).error,
            WireError::kMalformedPayload);

  ParityRequest unknown_kind;
  unknown_kind.kind = 9;
  EXPECT_EQ(ParityRequest::decode(unknown_kind.encode()).error,
            WireError::kMalformedPayload);

  // One basis bit per detection, enforced on decode.
  SiftAnnounce lopsided;
  lopsided.detected = BitVector{1, 0, 1};
  lopsided.bob_bases = BitVector{1};  // two detections, one basis
  EXPECT_EQ(SiftAnnounce::decode(lopsided.encode()).error,
            WireError::kMalformedPayload);
}

TEST(Packets, NonzeroDensePaddingIsMalformed) {
  // 9 bits occupy 2 bytes; the top 7 bits of the last byte are padding and
  // must decode as zero — a nonzero pad bit means a corrupt or non-canonical
  // encoding.
  SiftDecision packet;
  packet.frame_id = 0;
  packet.keep = BitVector(9);
  Bytes payload = packet.encode();
  payload.back() |= 0x80;
  EXPECT_EQ(SiftDecision::decode(payload).error, WireError::kMalformedPayload);
}

TEST(Packets, DecodePacketRejectsKmsFrames) {
  const Frame frame{PacketType::kKmsGetKey, {}};
  EXPECT_EQ(decode_packet(frame).error, WireError::kMalformedPayload);
}

TEST(Packets, DecodePacketBytesIsTheFullStrictPath) {
  SampleReveal packet;
  packet.frame_id = 8;
  packet.bits = BitVector{1, 0, 1};
  const Bytes framed = to_frame(packet);
  const auto decoded = decode_packet_bytes(framed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<SampleReveal>(decoded.value), packet);

  Bytes corrupt = framed;
  corrupt[1] ^= 0xFF;
  EXPECT_EQ(decode_packet_bytes(corrupt).error, WireError::kBadMagic);
}

}  // namespace
}  // namespace qkd::wire
