#include "src/wire/frame.hpp"

#include <gtest/gtest.h>

namespace qkd::wire {
namespace {

TEST(Frame, RoundTripsTypeAndPayload) {
  const Bytes payload{0xDE, 0xAD, 0xBE, 0xEF};
  const Bytes framed = encode_frame(PacketType::kSiftAnnounce, payload);
  ASSERT_EQ(framed.size(), kHeaderBytes + payload.size());

  const auto decoded = decode_frame(framed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value.type, PacketType::kSiftAnnounce);
  EXPECT_EQ(decoded.value.payload, payload);
}

TEST(Frame, RoundTripsEmptyPayload) {
  const Bytes framed = encode_frame(PacketType::kKmsBye, {});
  const auto decoded = decode_frame(framed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value.type, PacketType::kKmsBye);
  EXPECT_TRUE(decoded.value.payload.empty());
}

TEST(Frame, HeaderLayoutIsMagicVersionTypeLength) {
  const Bytes framed = encode_frame(PacketType::kAbort, Bytes{0x42});
  EXPECT_EQ(framed[0], 0x51);  // 'Q'
  EXPECT_EQ(framed[1], 0x4B);  // 'K'
  EXPECT_EQ(framed[2], kWireVersion);
  EXPECT_EQ(framed[3], static_cast<std::uint8_t>(PacketType::kAbort));
  // Big-endian u32 payload length.
  EXPECT_EQ(framed[4], 0u);
  EXPECT_EQ(framed[5], 0u);
  EXPECT_EQ(framed[6], 0u);
  EXPECT_EQ(framed[7], 1u);
}

TEST(Frame, ShortBufferIsTypedError) {
  const Bytes framed = encode_frame(PacketType::kAbort, Bytes{1, 2, 3});
  for (std::size_t len = 0; len < framed.size(); ++len) {
    const auto decoded =
        decode_frame(std::span<const std::uint8_t>(framed.data(), len));
    ASSERT_FALSE(decoded.ok()) << "prefix length " << len;
    EXPECT_EQ(decoded.error, WireError::kShortFrame) << "prefix length " << len;
  }
}

TEST(Frame, BadMagicRejected) {
  Bytes framed = encode_frame(PacketType::kAbort, {});
  framed[0] ^= 0xFF;
  EXPECT_EQ(decode_frame(framed).error, WireError::kBadMagic);
}

TEST(Frame, UnknownVersionRejected) {
  Bytes framed = encode_frame(PacketType::kAbort, {});
  framed[2] = kWireVersionTraced + 1;  // above every version we speak
  EXPECT_EQ(decode_frame(framed).error, WireError::kBadVersion);
}

TEST(Frame, PreTraceContextFramesStillDecode) {
  // A hand-assembled version-1 frame exactly as a pre-trace peer emits it:
  // the upgrade must not orphan old senders.
  const Bytes old_frame{0x51, 0x4B,  // magic "QK"
                        0x01,        // version 1 (no trace extension)
                        0x0A,        // kAbort
                        0x00, 0x00, 0x00, 0x02,  // payload length 2
                        0xAB, 0xCD};
  const auto decoded = decode_frame(old_frame);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value.type, PacketType::kAbort);
  EXPECT_EQ(decoded.value.payload, (Bytes{0xAB, 0xCD}));
  EXPECT_FALSE(decoded.value.trace.valid());

  // And the untraced encoder still produces those bytes bit for bit.
  EXPECT_EQ(encode_frame(PacketType::kAbort, Bytes{0xAB, 0xCD}), old_frame);
}

TEST(Frame, TraceContextRoundTripsInVersion2Frames) {
  const obs::TraceContext trace{0x1122334455667788ULL, 0x99AABBCCDDEEFF00ULL};
  const Bytes payload{0x42};
  const Bytes framed = encode_frame(PacketType::kKmsGetKey, payload, trace);
  ASSERT_EQ(framed.size(), kHeaderBytes + kTraceExtensionBytes + 1);
  EXPECT_EQ(framed[2], kWireVersionTraced);

  const auto total = frame_total_length(framed);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total.value, framed.size());

  const auto decoded = decode_frame(framed);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value.type, PacketType::kKmsGetKey);
  EXPECT_EQ(decoded.value.payload, payload);
  EXPECT_EQ(decoded.value.trace.trace_id, trace.trace_id);
  EXPECT_EQ(decoded.value.trace.parent_span, trace.parent_span);
}

TEST(Frame, InvalidTraceContextDegradesToVersion1) {
  // trace_id == 0 means "no trace": the traced overload must emit bytes
  // identical to the plain encoder, not a version-2 frame full of zeros.
  const Bytes payload{1, 2, 3};
  EXPECT_EQ(encode_frame(PacketType::kAbort, payload, obs::TraceContext{}),
            encode_frame(PacketType::kAbort, payload));
}

TEST(Frame, TruncatedTraceExtensionIsShortFrame) {
  const obs::TraceContext trace{7, 9};
  const Bytes framed = encode_frame(PacketType::kKmsGetKey, Bytes{5}, trace);
  for (std::size_t len = kHeaderBytes; len < framed.size(); ++len) {
    const auto decoded =
        decode_frame(std::span<const std::uint8_t>(framed.data(), len));
    ASSERT_FALSE(decoded.ok()) << "prefix length " << len;
    EXPECT_EQ(decoded.error, WireError::kShortFrame) << "prefix length " << len;
  }
}

TEST(Frame, Version2TrailingBytesStillRejected) {
  Bytes framed =
      encode_frame(PacketType::kKmsGetKey, Bytes{5}, obs::TraceContext{3, 4});
  framed.push_back(0x00);
  EXPECT_EQ(decode_frame(framed).error, WireError::kTrailingBytes);
}

TEST(Frame, UnknownTypeRejected) {
  Bytes framed = encode_frame(PacketType::kAbort, {});
  framed[3] = 0x7F;  // outside the vocabulary
  EXPECT_FALSE(packet_type_known(0x7F));
  EXPECT_EQ(decode_frame(framed).error, WireError::kUnknownType);
}

TEST(Frame, TrailingBytesRejected) {
  Bytes framed = encode_frame(PacketType::kAbort, Bytes{9});
  framed.push_back(0x00);
  EXPECT_EQ(decode_frame(framed).error, WireError::kTrailingBytes);
}

TEST(Frame, OversizedClaimRejectedBeforeAllocation) {
  Bytes framed = encode_frame(PacketType::kAbort, {});
  // Claim a payload over kMaxPayloadBytes; the buffer itself stays tiny.
  framed[4] = 0xFF;
  framed[5] = 0xFF;
  framed[6] = 0xFF;
  framed[7] = 0xFF;
  EXPECT_EQ(decode_frame(framed).error, WireError::kOversizedFrame);
}

TEST(Frame, TotalLengthValidatesHeaderPrefix) {
  const Bytes framed = encode_frame(PacketType::kEcSummary, Bytes(100));
  const auto length = frame_total_length(framed);
  ASSERT_TRUE(length.ok());
  EXPECT_EQ(length.value, framed.size());

  Bytes corrupt = framed;
  corrupt[0] ^= 1;
  EXPECT_EQ(frame_total_length(corrupt).error, WireError::kBadMagic);
  EXPECT_EQ(frame_total_length(std::span<const std::uint8_t>(framed.data(), 4))
                .error,
            WireError::kShortFrame);
}

TEST(Frame, RelayOverheadIsMeasuredFromTheLayout) {
  // 8-byte header + 4-byte Wegman-Carter hop tag = 96 bits: the value the
  // mesh charges each hop pad for, derived rather than asserted.
  EXPECT_EQ(relay_frame_overhead_bits(), 96u);
  EXPECT_EQ(relay_frame_overhead_bits(),
            8 * (kHeaderBytes + kRelayTagBytes));
}

TEST(Frame, EveryNamedTypeIsKnownAndNamed) {
  for (const PacketType type :
       {PacketType::kQframeFeed, PacketType::kSiftAnnounce,
        PacketType::kSiftDecision, PacketType::kSampleReveal,
        PacketType::kParityRequest, PacketType::kParityResponse,
        PacketType::kEcSummary, PacketType::kVerifyHash, PacketType::kPaParams,
        PacketType::kAbort, PacketType::kKeyDigest, PacketType::kKmsRegister,
        PacketType::kKmsRegisterReply, PacketType::kKmsGetKey,
        PacketType::kKmsGrant, PacketType::kKmsGetKeyWithId,
        PacketType::kKmsKeyWithIdReply, PacketType::kKmsStatus,
        PacketType::kKmsStatusReply, PacketType::kKmsReject,
        PacketType::kKmsBye, PacketType::kRelayHeader}) {
    EXPECT_TRUE(packet_type_known(static_cast<std::uint8_t>(type)));
    EXPECT_STRNE(packet_type_name(type), "?");
  }
}

}  // namespace
}  // namespace qkd::wire
