// Codec fuzzing (tier-1, seeded): every packet type round-trips
// bit-identically under random field values, and random mutation or
// truncation of the encoded bytes is rejected with a typed error — the
// strict decoder never throws past the Result boundary and never reads
// out of bounds. Replay any failure with QKD_TEST_SEED=<seed>.
#include <gtest/gtest.h>

#include <utility>
#include <variant>

#include "src/wire/etsi.hpp"
#include "src/wire/packets.hpp"
#include "tests/testing/seeded_rng.hpp"

namespace qkd::wire {
namespace {

Bytes random_bytes(qkd::Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& byte : out) byte = static_cast<std::uint8_t>(rng.next_below(256));
  return out;
}

/// One random distillation packet, already framed.
Bytes random_distillation_frame(qkd::Rng& rng) {
  switch (rng.next_below(11)) {
    case 0: {
      QframeFeed p;
      p.frame_id = rng.next_u64();
      const std::size_t slots = rng.next_below(2048);
      p.detected = rng.next_bits(slots);
      p.bases = rng.next_bits(slots);
      p.bits = rng.next_bits(slots);
      return to_frame(p);
    }
    case 1: {
      SiftAnnounce p;
      p.frame_id = rng.next_u64();
      // Sparse-ish mask: set ~1/64 of the slots.
      p.detected = qkd::BitVector(rng.next_below(4096) + 1);
      for (std::size_t i = 0; i < p.detected.size(); ++i)
        if (rng.next_below(64) == 0) p.detected.set(i, true);
      p.bob_bases = rng.next_bits(p.detected.popcount());
      return to_frame(p);
    }
    case 2: {
      SiftDecision p;
      p.frame_id = rng.next_u64();
      p.keep = rng.next_bits(rng.next_below(512));
      return to_frame(p);
    }
    case 3: {
      SampleReveal p;
      p.frame_id = rng.next_u64();
      p.bits = rng.next_bits(rng.next_below(512));
      return to_frame(p);
    }
    case 4: {
      ParityRequest p;
      p.kind = static_cast<std::uint8_t>(rng.next_below(2));
      p.seed = rng.next_u32();
      p.begin = rng.next_u32();
      p.end = rng.next_u32();
      if (p.begin > p.end) std::swap(p.begin, p.end);
      return to_frame(p);
    }
    case 5: {
      ParityResponse p;
      p.parity = rng.next_bool();
      return to_frame(p);
    }
    case 6: {
      EcSummary p;
      p.corrections = rng.next_u32();
      p.converged = rng.next_bool();
      return to_frame(p);
    }
    case 7: {
      VerifyHash p;
      p.frame_id = rng.next_u64();
      p.digest = random_bytes(rng, 20);
      return to_frame(p);
    }
    case 8: {
      PaParamsPacket p;
      p.n = static_cast<std::uint32_t>(rng.next_below(4096) + 1);
      p.m = static_cast<std::uint32_t>(rng.next_below(p.n) + 1);
      p.modulus_exponents = {p.n, static_cast<std::uint32_t>(rng.next_below(p.n)),
                             0};
      p.multiplier = rng.next_bits(p.n);
      p.addend = rng.next_bits(p.m);
      return to_frame(p);
    }
    case 9: {
      AbortPacket p;
      p.reason = static_cast<std::uint8_t>(rng.next_below(8));
      return to_frame(p);
    }
    default: {
      KeyDigest p;
      p.frame_id = rng.next_u64();
      p.key_bits = rng.next_u64();
      p.digest = random_bytes(rng, 20);
      return to_frame(p);
    }
  }
}

/// One random KMS message, already framed.
Bytes random_etsi_frame(qkd::Rng& rng) {
  switch (rng.next_below(10)) {
    case 0: {
      KmsRegister m;
      const Bytes name = random_bytes(rng, rng.next_below(64));
      m.name.assign(name.begin(), name.end());
      m.src = rng.next_u32();
      m.dst = rng.next_u32();
      m.qos = static_cast<std::uint8_t>(rng.next_below(3));
      return to_frame(m);
    }
    case 1: {
      KmsRegisterReply m;
      m.client_id = rng.next_u32();
      return to_frame(m);
    }
    case 2: {
      KmsGetKey m;
      m.client_id = rng.next_u32();
      m.request_id = rng.next_u64();
      m.bits = rng.next_below(1 << 16);
      return to_frame(m);
    }
    case 3: {
      KmsGetKeyWithId m;
      m.client_id = rng.next_u32();
      m.request_id = rng.next_u64();
      m.key_id = rng.next_u64();
      return to_frame(m);
    }
    case 4: {
      KmsStatus m;
      m.client_id = rng.next_u32();
      return to_frame(m);
    }
    case 5:
      return to_frame(KmsBye{});
    case 6: {
      KmsGrant m;
      m.request_id = rng.next_u64();
      m.status = static_cast<std::uint8_t>(rng.next_below(4));
      m.key_id = rng.next_u64();
      m.bits = rng.next_bits(rng.next_below(2048));
      m.compromised = rng.next_bool();
      return to_frame(m);
    }
    case 7: {
      KmsKeyWithIdReply m;
      m.request_id = rng.next_u64();
      m.ok = rng.next_bool();
      m.key_id = rng.next_u64();
      m.bits = rng.next_bits(rng.next_below(2048));
      return to_frame(m);
    }
    case 8: {
      KmsStatusReply m;
      m.requests = rng.next_u64();
      m.granted = rng.next_u64();
      m.queue_depth = rng.next_u64();
      m.claims_fulfilled = rng.next_u64();
      return to_frame(m);
    }
    default: {
      KmsReject m;
      m.request_id = rng.next_u64();
      m.status = static_cast<std::uint8_t>(rng.next_below(4));
      return to_frame(m);
    }
  }
}

/// Re-encodes whatever a frame decoded to; "" when it failed to decode.
Bytes reencode(const Frame& frame) {
  if (const auto packet = decode_packet(frame); packet.ok())
    return std::visit([](const auto& p) { return to_frame(p); }, packet.value);
  if (const auto message = decode_etsi(frame); message.ok())
    return std::visit([](const auto& m) { return to_frame(m); },
                      message.value);
  return {};
}

TEST(CodecFuzz, RandomPacketsRoundTripBitIdentically) {
  QKD_SEEDED_RNG(rng, 2003);
  for (int i = 0; i < 400; ++i) {
    const Bytes framed = i % 2 == 0 ? random_distillation_frame(rng)
                                    : random_etsi_frame(rng);
    const auto frame = decode_frame(framed);
    ASSERT_TRUE(frame.ok()) << "iteration " << i;
    // decode -> encode reproduces the exact original bytes: the codec is
    // canonical, so wire accounting of a re-sent packet is stable.
    EXPECT_EQ(reencode(frame.value), framed) << "iteration " << i;
  }
}

TEST(CodecFuzz, TruncationIsAlwaysATypedError) {
  QKD_SEEDED_RNG(rng, 2004);
  for (int i = 0; i < 200; ++i) {
    const Bytes framed = i % 2 == 0 ? random_distillation_frame(rng)
                                    : random_etsi_frame(rng);
    const std::size_t cut = rng.next_below(framed.size());
    const std::span<const std::uint8_t> prefix(framed.data(), cut);
    const auto frame = decode_frame(prefix);
    ASSERT_FALSE(frame.ok()) << "iteration " << i << " cut " << cut;
    EXPECT_NE(frame.error, WireError::kNone);
  }
}

TEST(CodecFuzz, MutationNeverEscapesTheResultBoundary) {
  QKD_SEEDED_RNG(rng, 2005);
  std::size_t rejected = 0;
  constexpr int kRounds = 400;
  for (int i = 0; i < kRounds; ++i) {
    Bytes framed = i % 2 == 0 ? random_distillation_frame(rng)
                              : random_etsi_frame(rng);
    // Flip 1-4 random bytes anywhere (header or payload).
    const std::size_t flips = 1 + rng.next_below(4);
    for (std::size_t f = 0; f < flips; ++f)
      framed[rng.next_below(framed.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));

    // Strict decode must return a Result — never throw, never crash. A
    // mutation can land in free value bits and still decode; anything
    // structural must come back as a typed error.
    const auto frame = decode_frame(framed);
    if (!frame.ok()) {
      EXPECT_NE(frame.error, WireError::kNone);
      ++rejected;
      continue;
    }
    const auto packet = decode_packet(frame.value);
    const auto message = decode_etsi(frame.value);
    if (!packet.ok() && !message.ok()) {
      EXPECT_NE(packet.error, WireError::kNone);
      EXPECT_NE(message.error, WireError::kNone);
      ++rejected;
    }
  }
  // The corpus is not vacuous: plenty of mutations must actually have hit
  // structure (magic, version, type, length, counts) and been rejected.
  EXPECT_GT(rejected, kRounds / 4);
}

TEST(CodecFuzz, RandomGarbageIsRejected) {
  QKD_SEEDED_RNG(rng, 2006);
  for (int i = 0; i < 200; ++i) {
    const Bytes garbage = random_bytes(rng, rng.next_below(256));
    const auto frame = decode_frame(garbage);
    if (frame.ok()) {
      // Astronomically unlikely (needs the magic, a live version, a known
      // type and an exact length), but if it happens the typed decode
      // still must not throw.
      decode_packet(frame.value);
      decode_etsi(frame.value);
    } else {
      EXPECT_NE(frame.error, WireError::kNone);
    }
  }
}

}  // namespace
}  // namespace qkd::wire
