#include "src/wire/transport.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>

#include <thread>

#include "src/net/channel_transport.hpp"
#include "src/wire/packets.hpp"
#include "tests/testing/seeded_rng.hpp"

namespace qkd::wire {
namespace {

TEST(TcpTransport, RoundTripsFramesBothWays) {
  TcpListener listener(0);
  ASSERT_NE(listener.port(), 0);

  std::unique_ptr<TcpTransport> client;
  std::thread connector(
      [&client, port = listener.port()] { client = tcp_connect(port); });
  std::unique_ptr<TcpTransport> server = listener.accept_transport();
  connector.join();
  ASSERT_NE(server, nullptr);
  ASSERT_NE(client, nullptr);

  const Bytes ping = encode_frame(PacketType::kKmsStatus, Bytes{1, 2, 3});
  const Bytes pong = encode_frame(PacketType::kKmsStatusReply, Bytes{4, 5});
  ASSERT_TRUE(client->send_frame(ping));
  ASSERT_TRUE(server->send_frame(pong));

  EXPECT_EQ(server->recv_frame(), ping);
  EXPECT_EQ(client->recv_frame(), pong);
}

TEST(TcpTransport, ReassemblesLargeFrameFromTheStream) {
  QKD_SEEDED_RNG(rng, 41);
  TcpListener listener(0);
  std::unique_ptr<TcpTransport> client;
  std::thread connector(
      [&client, port = listener.port()] { client = tcp_connect(port); });
  std::unique_ptr<TcpTransport> server = listener.accept_transport();
  connector.join();
  ASSERT_NE(server, nullptr);
  ASSERT_NE(client, nullptr);

  // Well past any single read(): the receiver must loop on the length
  // prefix until the whole payload is in.
  Bytes payload(512 * 1024);
  for (auto& byte : payload)
    byte = static_cast<std::uint8_t>(rng.next_below(256));
  const Bytes big = encode_frame(PacketType::kQframeFeed, payload);

  std::thread sender([&client, &big] { client->send_frame(big); });
  const auto received = server->recv_frame();
  sender.join();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, big);
}

TEST(TcpTransport, BackToBackFramesStaySeparate) {
  TcpListener listener(0);
  std::unique_ptr<TcpTransport> client;
  std::thread connector(
      [&client, port = listener.port()] { client = tcp_connect(port); });
  std::unique_ptr<TcpTransport> server = listener.accept_transport();
  connector.join();
  ASSERT_NE(client, nullptr);

  // Several frames land in one TCP segment's worth of bytes; the length
  // prefix must carve them back apart, never split or merge.
  std::vector<Bytes> sent;
  for (std::uint8_t i = 0; i < 5; ++i)
    sent.push_back(encode_frame(PacketType::kParityRequest, Bytes(13, i)));
  for (const Bytes& frame : sent) ASSERT_TRUE(client->send_frame(frame));

  for (const Bytes& frame : sent) EXPECT_EQ(server->recv_frame(), frame);
}

TEST(TcpTransport, PeerCloseSurfacesAsClosed) {
  TcpListener listener(0);
  std::unique_ptr<TcpTransport> client;
  std::thread connector(
      [&client, port = listener.port()] { client = tcp_connect(port); });
  std::unique_ptr<TcpTransport> server = listener.accept_transport();
  connector.join();
  ASSERT_NE(server, nullptr);

  client.reset();  // closes the fd -> EOF on the server side
  EXPECT_EQ(server->recv_frame(), std::nullopt);
  EXPECT_EQ(server->last_error(), WireError::kClosed);
  EXPECT_FALSE(server->is_open());
}

TEST(TcpTransport, ReceiveTimeoutSurfacesAsClosedNotHang) {
  TcpListener listener(0);
  std::unique_ptr<TcpTransport> client;
  std::thread connector(
      [&client, port = listener.port()] { client = tcp_connect(port); });
  std::unique_ptr<TcpTransport> server = listener.accept_transport();
  connector.join();
  ASSERT_NE(server, nullptr);

  server->set_recv_timeout_ms(50);  // nobody ever sends
  EXPECT_EQ(server->recv_frame(), std::nullopt);
  EXPECT_EQ(server->last_error(), WireError::kClosed);
}

TEST(TcpTransport, CorruptHeaderIsRejectedBeforeThePayload) {
  TcpListener listener(0);
  std::unique_ptr<TcpTransport> client;
  std::thread connector(
      [&client, port = listener.port()] { client = tcp_connect(port); });
  std::unique_ptr<TcpTransport> server = listener.accept_transport();
  connector.join();
  ASSERT_NE(client, nullptr);

  Bytes corrupt = encode_frame(PacketType::kAbort, Bytes{1});
  corrupt[0] ^= 0xFF;  // break the magic
  ASSERT_TRUE(client->send_frame(corrupt));
  EXPECT_EQ(server->recv_frame(), std::nullopt);
  EXPECT_EQ(server->last_error(), WireError::kBadMagic);
}

TEST(TcpTransport, ConnectToDeadPortFails) {
  std::uint16_t dead_port = 0;
  {
    TcpListener listener(0);
    dead_port = listener.port();
  }  // listener closed: nothing is bound there now
  EXPECT_EQ(tcp_connect(dead_port, /*retry_ms=*/50), nullptr);
}

TEST(ChannelTransport, MovesTheSameEncodedBytesAsTheSocketPath) {
  // The acceptance bar: codec shared, transport swapped. One frame goes
  // over an in-memory channel and over TCP; both receivers see identical
  // bytes.
  SampleReveal packet;
  packet.frame_id = 6;
  packet.bits = qkd::BitVector{1, 1, 0, 1};
  const Bytes framed = to_frame(packet);

  net::PublicChannel channel;
  net::ChannelTransport a(channel, net::ChannelTransport::Side::kA);
  net::ChannelTransport b(channel, net::ChannelTransport::Side::kB);
  ASSERT_TRUE(a.send_frame(framed));
  const auto via_channel = b.recv_frame();
  ASSERT_TRUE(via_channel.has_value());

  TcpListener listener(0);
  std::unique_ptr<TcpTransport> client;
  std::thread connector(
      [&client, port = listener.port()] { client = tcp_connect(port); });
  std::unique_ptr<TcpTransport> server = listener.accept_transport();
  connector.join();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->send_frame(framed));
  const auto via_socket = server->recv_frame();
  ASSERT_TRUE(via_socket.has_value());

  EXPECT_EQ(*via_channel, *via_socket);
  EXPECT_EQ(*via_channel, framed);
}

TEST(ChannelTransport, DrainedChannelIsACueNotAnError) {
  net::PublicChannel channel;
  net::ChannelTransport a(channel, net::ChannelTransport::Side::kA);
  EXPECT_EQ(a.recv_frame(), std::nullopt);
  EXPECT_EQ(a.last_error(), WireError::kNone);
}

}  // namespace
}  // namespace qkd::wire
