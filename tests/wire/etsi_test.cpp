#include "src/wire/etsi.hpp"

#include <gtest/gtest.h>

#include "src/wire/packets.hpp"
#include "tests/testing/seeded_rng.hpp"

namespace qkd::wire {
namespace {

template <typename Message>
Message round_trip(const Message& message) {
  const Bytes framed = to_frame(message);
  const auto frame = decode_frame(framed);
  EXPECT_TRUE(frame.ok());
  const auto decoded = decode_etsi(frame.value);
  EXPECT_TRUE(decoded.ok()) << packet_type_name(Message::kType);
  EXPECT_TRUE(std::holds_alternative<Message>(decoded.value));
  return std::get<Message>(decoded.value);
}

TEST(Etsi, RegisterRoundTrips) {
  KmsRegister request;
  request.name = "vpn-gw-7 (interactive)";
  request.src = 2;
  request.dst = 5;
  request.qos = 0;
  EXPECT_EQ(round_trip(request), request);

  KmsRegisterReply reply;
  reply.client_id = 4031;
  EXPECT_EQ(round_trip(reply), reply);
}

TEST(Etsi, EmptyNameSurvives) {
  KmsRegister request;  // name left empty
  EXPECT_EQ(round_trip(request), request);
}

TEST(Etsi, GetKeyDialogueRoundTrips) {
  KmsGetKey request;
  request.client_id = 12;
  request.request_id = 901;
  request.bits = 256;
  EXPECT_EQ(round_trip(request), request);

  QKD_SEEDED_RNG(rng, 17);
  KmsGrant grant;
  grant.request_id = 901;
  grant.status = 0;
  grant.key_id = 0xFEEDF00DCAFEULL;
  grant.bits = rng.next_bits(256);
  grant.compromised = true;
  EXPECT_EQ(round_trip(grant), grant);

  KmsReject reject;
  reject.request_id = 902;
  reject.status = 2;
  EXPECT_EQ(round_trip(reject), reject);
}

TEST(Etsi, GetKeyWithIdDialogueRoundTrips) {
  KmsGetKeyWithId request;
  request.client_id = 3;
  request.request_id = 11;
  request.key_id = 0xABCDEF01;
  EXPECT_EQ(round_trip(request), request);

  QKD_SEEDED_RNG(rng, 23);
  KmsKeyWithIdReply reply;
  reply.request_id = 11;
  reply.ok = true;
  reply.key_id = 0xABCDEF01;
  reply.bits = rng.next_bits(256);
  EXPECT_EQ(round_trip(reply), reply);

  KmsKeyWithIdReply unknown;  // claim of an expired/unknown key_id
  unknown.request_id = 12;
  EXPECT_EQ(round_trip(unknown), unknown);
}

TEST(Etsi, StatusAndByeRoundTrip) {
  KmsStatus request;
  request.client_id = 44;
  EXPECT_EQ(round_trip(request), request);

  KmsStatusReply reply;
  reply.requests = 10000;
  reply.granted = 9876;
  reply.queue_depth = 17;
  reply.claims_fulfilled = 9800;
  EXPECT_EQ(round_trip(reply), reply);

  EXPECT_EQ(round_trip(KmsBye{}), KmsBye{});
}

TEST(Etsi, TruncatedMessageIsMalformed) {
  KmsGrant grant;
  grant.request_id = 1;
  QKD_SEEDED_RNG(rng, 9);
  grant.bits = rng.next_bits(128);
  Bytes payload = grant.encode();
  payload.pop_back();
  EXPECT_EQ(KmsGrant::decode(payload).error, WireError::kMalformedPayload);
}

TEST(Etsi, TrailingBytesAreRejected) {
  KmsStatus request;
  Bytes payload = request.encode();
  payload.push_back(7);
  EXPECT_EQ(KmsStatus::decode(payload).error, WireError::kTrailingBytes);
  EXPECT_EQ(KmsBye::decode(Bytes{0}).error, WireError::kTrailingBytes);
}

TEST(Etsi, DecodeEtsiRejectsDistillationFrames) {
  const Frame frame{PacketType::kSiftAnnounce, {}};
  EXPECT_EQ(decode_etsi(frame).error, WireError::kMalformedPayload);
}

}  // namespace
}  // namespace qkd::wire
