// Integration tests across the whole system of Fig. 11: photons at the
// bottom, IP packets at the top.
#include <gtest/gtest.h>

#include "src/ipsec/vpn_sim.hpp"
#include "src/network/key_transport.hpp"
#include "src/optics/entangled.hpp"
#include "src/qkd/engine.hpp"
#include "src/qkd/privacy.hpp"
#include "src/qkd/sifting.hpp"

namespace {

using namespace qkd::ipsec;
using namespace qkd::proto;

SpdEntry protect_all(const char* name, CipherAlgo cipher, QkdMode mode) {
  SpdEntry entry;
  entry.name = name;
  entry.action = PolicyAction::kProtect;
  entry.cipher = cipher;
  entry.qkd_mode = mode;
  entry.lifetime_seconds = 30.0;
  return entry;
}

IpPacket make_packet(int tag) {
  IpPacket packet;
  packet.src = parse_ipv4("10.1.1.1");
  packet.dst = parse_ipv4("10.2.2.2");
  packet.payload.assign(64, static_cast<std::uint8_t>(tag));
  return packet;
}

TEST(FullStack, PhotonsToPackets) {
  // The complete Fig. 11 chain: a weak-coherent link distills key; the
  // distilled bits (identical on both ends by pipeline construction) are
  // deposited into the gateways' Qblock pools; IKE pulls Qblocks into ESP
  // keymat; user traffic crosses the tunnel.
  QkdLinkConfig qkd_config;
  qkd_config.frame_slots = 1 << 20;
  QkdLinkSession qkd(qkd_config, 1);

  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 2);
  vpn.install_mirrored_policy(
      protect_all("tunnel", CipherAlgo::kAes128, QkdMode::kHybrid));

  qkd::BitVector total_key;
  while (total_key.size() < 4096) {
    const BatchResult batch = qkd.run_batch();
    ASSERT_LT(qkd.totals().batches, 48u) << "link failed to distill";
    if (!batch.accepted) continue;
    total_key.append(batch.key);
    vpn.deposit_key_material(batch.key);
  }
  vpn.start();

  for (int i = 0; i < 10; ++i) {
    vpn.a().submit_plaintext(make_packet(i), vpn.clock().now());
    vpn.advance(0.5);
  }
  EXPECT_EQ(vpn.b().stats().delivered, 10u);
  EXPECT_EQ(vpn.b().stats().auth_failures, 0u);
  EXPECT_GE(vpn.a().ike().stats().qblocks_consumed, 1u);
}

TEST(FullStack, OtpTunnelRunsOnRealDistilledBits) {
  QkdLinkConfig qkd_config;
  qkd_config.frame_slots = 1 << 20;
  QkdLinkSession qkd(qkd_config, 3);

  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 4);
  SpdEntry policy = protect_all("otp", CipherAlgo::kOneTimePad, QkdMode::kOtp);
  policy.qblocks_per_rekey = 1;
  vpn.install_mirrored_policy(policy);

  // Distill enough for keymat + both pads (3 Qblocks per negotiation,
  // drawn from the initiator's lane, which holds half the deposits).
  qkd::BitVector pool;
  while (pool.size() < 10 * qkd::keystore::KeySupply::kQblockBits) {
    const BatchResult batch = qkd.run_batch();
    ASSERT_LT(qkd.totals().batches, 96u);
    if (batch.accepted) pool.append(batch.key);
  }
  vpn.deposit_key_material(pool);
  vpn.start();

  vpn.a().submit_plaintext(make_packet(1), vpn.clock().now());
  vpn.advance(1.0);
  const auto delivered = vpn.b().drain_delivered();
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], make_packet(1));
}

TEST(FullStack, EavesdroppedLinkStarvesTheVpn) {
  // Eve sits on the quantum channel: batches abort, pools stop filling, and
  // (after the prepositioned material runs out) rekeys degrade. The VPN
  // never uses disturbed bits because no disturbed batch is ever accepted.
  QkdLinkConfig qkd_config;
  qkd_config.frame_slots = 1 << 20;
  QkdLinkSession qkd(qkd_config, 5);
  qkd::optics::InterceptResendAttack eve(1.0);

  std::size_t deposited = 0;
  for (int i = 0; i < 5; ++i) {
    const BatchResult batch = qkd.run_batch(&eve);
    EXPECT_FALSE(batch.accepted);
    deposited += batch.distilled_bits;
  }
  EXPECT_EQ(deposited, 0u);
  EXPECT_EQ(qkd.totals().aborted_qber(), 5u);
}

TEST(FullStack, EntangledFramesFlowThroughTheSameSifting) {
  // The Section 8 "next kind of link": entangled frames are drop-in
  // compatible with the protocol stack's sifting stage.
  qkd::optics::EntangledLink link(qkd::optics::EntangledParams{}, 6);
  const auto frame = link.run_frame(500000);
  const SiftMessage msg = make_sift_message(1, frame.bob);
  const AliceSiftResult alice = alice_sift(frame.alice, msg);
  const SiftOutcome bob = bob_apply_response(frame.bob, msg, alice.response);
  ASSERT_GT(alice.outcome.bits.size(), 100u);
  EXPECT_EQ(alice.outcome.bits.size(), bob.bits.size());
  const double qber =
      static_cast<double>(alice.outcome.bits.hamming_distance(bob.bits)) /
      static_cast<double>(alice.outcome.bits.size());
  EXPECT_LT(qber, 0.06);  // better than the weak-coherent link's 6 %
}

TEST(FullStack, EntangledErrorsCorrectAndDistill) {
  // Entangled sifted bits through Cascade + entropy (entangled accounting)
  // + privacy amplification: the full distillation path for link type #2.
  qkd::optics::EntangledLink link(qkd::optics::EntangledParams{}, 7);
  const auto frame = link.run_frame(1 << 20);
  const SiftMessage msg = make_sift_message(1, frame.bob);
  const AliceSiftResult alice_sifted = alice_sift(frame.alice, msg);
  SiftOutcome bob_sifted = bob_apply_response(frame.bob, msg,
                                              alice_sifted.response);

  qkd::BitVector alice_bits = alice_sifted.outcome.bits;
  qkd::BitVector bob_bits = bob_sifted.bits;
  LocalParityOracle oracle(alice_bits);
  const EcStats ec = classic_cascade_correct(bob_bits, oracle, 0.03);
  EXPECT_TRUE(ec.converged);
  EXPECT_EQ(bob_bits, alice_bits);

  EntropyInputs inputs;
  inputs.sifted_bits = alice_bits.size();
  inputs.error_bits = ec.corrections;
  inputs.transmitted_pulses = 1 << 20;
  inputs.disclosed_bits = oracle.disclosed();
  inputs.mean_photon_number = 0.05;  // pair probability plays mu's role
  inputs.link_kind = LinkKind::kEntangled;
  inputs.defense = DefenseFunction::kBennett;
  const EntropyEstimate entropy = estimate_entropy(inputs);
  ASSERT_GT(entropy.distillable_bits, 64.0);

  qkd::crypto::Drbg drbg(7u);
  const std::size_t m = static_cast<std::size_t>(entropy.distillable_bits);
  // Chunk like the engine does if needed (entangled batches are small).
  ASSERT_LE(alice_bits.size(), pa_max_block_bits());
  const PaParams pa = make_pa_params(alice_bits.size(), m, drbg);
  EXPECT_EQ(privacy_amplify(alice_bits, pa), privacy_amplify(bob_bits, pa));
}

TEST(FullStack, MeshFedByEngineRates) {
  // Cross-validation: the mesh's analytic per-link rate against the real
  // engine, then a transport across a relay path using that budget.
  qkd::network::MeshSimulation mesh(qkd::network::Topology::relay_ring(4), 8);
  mesh.step(30.0);
  const auto result = mesh.transport_key(4, 5, 256);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.key.size(), 256u);
}

}  // namespace
