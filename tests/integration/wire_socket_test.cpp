// Two-OS-process integration over real localhost sockets: one process per
// endpoint, forked from the test runner, talking only through the framed
// TCP transport. This is the paper's deployment shape — Alice and Bob are
// separate machines — and the acceptance bar for the wire layer: the
// distilled key must come back byte-identical on both sides of a real
// socket, and a KMS client must complete the full ETSI-style dialogue
// against a server it shares no memory with.
//
// Opt-in: set QKD_WIRE_INTEGRATION=1 (the suite forks and binds sockets,
// so it stays out of tier-1; `ctest -L wire` runs it).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "src/kms/wire_service.hpp"
#include "src/network/key_service.hpp"
#include "src/qkd/peer.hpp"
#include "src/wire/transport.hpp"

namespace qkd {
namespace {

constexpr std::uint64_t kSeed = 20030825;
constexpr int kRecvTimeoutMs = 30000;

bool integration_enabled() {
  const char* flag = std::getenv("QKD_WIRE_INTEGRATION");
  return flag != nullptr && *flag != '\0' && std::strcmp(flag, "0") != 0;
}

#define REQUIRE_INTEGRATION()                                              \
  if (!integration_enabled())                                              \
  GTEST_SKIP() << "set QKD_WIRE_INTEGRATION=1 to run the two-process suite"

/// Reads exactly `n` bytes from `fd` (pipes deliver in chunks).
bool read_exact(int fd, void* buffer, std::size_t n) {
  auto* out = static_cast<std::uint8_t*>(buffer);
  while (n > 0) {
    const ssize_t got = ::read(fd, out, n);
    if (got <= 0) return false;
    out += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

/// Waits for `pid` and returns its exit status, or -1 on abnormal death.
int wait_exit(pid_t pid) {
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) return -1;
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

network::Topology hot_star() {
  network::Topology topo;
  const auto relay = topo.add_node("relay", network::NodeKind::kTrustedRelay);
  const auto a = topo.add_node("a", network::NodeKind::kEndpoint);
  const auto b = topo.add_node("b", network::NodeKind::kEndpoint);
  qkd::optics::LinkParams optics;
  optics.fiber_km = 1.0;
  optics.pulse_rate_hz = 1e9;
  topo.add_link(relay, a, optics);
  topo.add_link(relay, b, optics);
  return topo;
}

TEST(WireIntegration, DistillationLandsByteIdenticalKeysAcrossProcesses) {
  REQUIRE_INTEGRATION();
  const proto::QkdLinkConfig config;  // default Qframe, see peer_test.cpp

  wire::TcpListener listener(0);
  int key_pipe[2];
  ASSERT_EQ(::pipe(key_pipe), 0);

  const pid_t bob_pid = ::fork();
  ASSERT_GE(bob_pid, 0);
  if (bob_pid == 0) {
    // Bob's process: connect, distill one batch, ship the key up the pipe.
    ::close(key_pipe[0]);
    proto::BobPeer bob(config, kSeed);
    auto io = wire::tcp_connect(listener.port());
    if (io == nullptr) ::_exit(2);
    io->set_recv_timeout_ms(kRecvTimeoutMs);
    const proto::PeerOutcome outcome = bob.run_batch(*io);
    if (!outcome.accepted || !outcome.digest_matched) ::_exit(3);
    const std::uint64_t bits = outcome.key.size();
    const Bytes bytes = outcome.key.to_bytes();
    if (::write(key_pipe[1], &bits, sizeof(bits)) != sizeof(bits)) ::_exit(4);
    if (::write(key_pipe[1], bytes.data(), bytes.size()) !=
        static_cast<ssize_t>(bytes.size()))
      ::_exit(4);
    ::close(key_pipe[1]);
    ::_exit(0);
  }

  // Alice's process (the test runner): accept and run the same batch.
  ::close(key_pipe[1]);
  auto io = listener.accept_transport();
  ASSERT_NE(io, nullptr);
  io->set_recv_timeout_ms(kRecvTimeoutMs);
  proto::AlicePeer alice(config, kSeed);
  const proto::PeerOutcome outcome = alice.run_batch(*io);

  ASSERT_TRUE(outcome.accepted)
      << "reason " << static_cast<int>(outcome.reason);
  EXPECT_TRUE(outcome.digest_matched);
  ASSERT_GT(outcome.key.size(), 0u);

  // Bob's actual key bits, read across the process boundary: the two
  // processes must hold byte-identical key with no shared memory to lean
  // on — only the protocol over the socket.
  std::uint64_t bob_bits = 0;
  ASSERT_TRUE(read_exact(key_pipe[0], &bob_bits, sizeof(bob_bits)));
  EXPECT_EQ(bob_bits, outcome.key.size());
  Bytes bob_key((bob_bits + 7) / 8);
  ASSERT_TRUE(read_exact(key_pipe[0], bob_key.data(), bob_key.size()));
  ::close(key_pipe[0]);
  EXPECT_EQ(bob_key, outcome.key.to_bytes());

  EXPECT_EQ(wait_exit(bob_pid), 0);
}

TEST(WireIntegration, KmsDialogueCompletesAgainstAServerProcess) {
  REQUIRE_INTEGRATION();
  wire::TcpListener listener(0);

  const pid_t server_pid = ::fork();
  ASSERT_GE(server_pid, 0);
  if (server_pid == 0) {
    // Server process: a live KMS over a real mesh, serving one connection
    // until KmsBye. Exit 0 only on a clean Bye-terminated conversation.
    auto io = listener.accept_transport();
    if (io == nullptr) ::_exit(2);
    io->set_recv_timeout_ms(kRecvTimeoutMs);
    network::MeshSimulation mesh(hot_star(), 77);
    mesh.step(20.0);
    qkd::SimClock clock;
    sim::EventScheduler scheduler(clock);
    kms::KeyManagementService service(mesh, scheduler, {});
    kms::KmsWireServer server(service, scheduler);
    server.serve(*io);
    ::_exit(server.served() >= 5 ? 0 : 3);
  }

  // Client process (the test runner): the full get_key / get_key_with_id
  // exchange the paper's Fig. 9 API describes, over the socket.
  auto io = wire::tcp_connect(listener.port());
  ASSERT_NE(io, nullptr);
  io->set_recv_timeout_ms(kRecvTimeoutMs);
  kms::KmsWireClient client(*io);

  const auto alice = client.register_app("alice-app", 1, 2);
  const auto bob = client.register_app("bob-app", 2, 1);
  ASSERT_TRUE(alice.has_value());
  ASSERT_TRUE(bob.has_value());

  const auto granted = client.get_key(*alice, 512);
  ASSERT_TRUE(granted.has_value());
  ASSERT_EQ(granted->status, kms::GrantStatus::kGranted);
  EXPECT_EQ(granted->bits.size(), 512u);

  // The peer side claims the same bits by key_ID from the server process.
  const auto claimed = client.get_key_with_id(*bob, granted->key_id);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->key_id, granted->key_id);
  EXPECT_TRUE(claimed->bits == granted->bits);

  const auto status = client.status(*alice);
  ASSERT_TRUE(status.has_value());
  EXPECT_GE(status->granted, 1u);
  EXPECT_EQ(status->claims_fulfilled, 1u);

  client.bye();
  EXPECT_EQ(wait_exit(server_pid), 0);
}

TEST(WireIntegration, AbandonedPeerProcessDoesNotHangTheOther) {
  REQUIRE_INTEGRATION();
  wire::TcpListener listener(0);

  const pid_t quitter_pid = ::fork();
  ASSERT_GE(quitter_pid, 0);
  if (quitter_pid == 0) {
    // Connect, say nothing, die: the worst-behaved peer there is.
    auto io = wire::tcp_connect(listener.port());
    ::_exit(io == nullptr ? 2 : 0);
  }

  auto io = listener.accept_transport();
  ASSERT_NE(io, nullptr);
  io->set_recv_timeout_ms(2000);
  proto::AlicePeer alice(proto::QkdLinkConfig{}, kSeed);
  const proto::PeerOutcome outcome = alice.run_batch(*io);
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.reason, proto::AbortReason::kChannelLost);
  EXPECT_EQ(wait_exit(quitter_pid), 0);
}

}  // namespace
}  // namespace qkd
