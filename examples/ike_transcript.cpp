// Reproduces Fig. 12: "Extract from the first IKE transaction setting up a
// VPN protected by quantum cryptography."
//
//   $ ./ike_transcript
//
// Installs a syslog-style log sink, stands up the two gateways of the
// paper's testbed (192.1.99.34 <-> 192.1.99.35), deposits freshly distilled
// Qblocks, and lets IKE negotiate. The log lines carry the same
// file:line:function tags racoon printed in the original transcript —
// including the QPFS "reply 1 Qblocks 1024 bits" extension line and the
// "KEYMAT using ... bytes QBITS" derivation.
#include <cstdio>
#include <string>

#include "src/common/logging.hpp"
#include "src/ipsec/vpn_sim.hpp"
#include "src/qkd/engine.hpp"

int main() {
  using namespace qkd::ipsec;

  // Fig.-12-style sink: "Dec  5 12:53:32 <gw> racoon: INFO: <rest>".
  int fake_seconds = 32;
  qkd::Logger::instance().set_level(qkd::LogLevel::kInfo);
  qkd::Logger::instance().set_sink(
      [&fake_seconds](qkd::LogLevel, const std::string& message) {
        std::printf("Dec  5 12:53:%02d %s\n", fake_seconds % 60,
                    message.c_str());
      });

  // Distill genuine QKD bits for the pools.
  qkd::proto::QkdLinkConfig qkd_config;
  qkd_config.frame_slots = 1 << 20;
  qkd::proto::QkdLinkSession qkd(qkd_config, 1202);
  qkd::BitVector key_material;
  while (key_material.size() < 8 * qkd::keystore::KeySupply::kQblockBits) {
    const auto batch = qkd.run_batch();
    if (batch.accepted) key_material.append(batch.key);
  }

  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 12);
  SpdEntry policy;
  policy.name = "qkd-vpn";
  policy.action = PolicyAction::kProtect;
  policy.cipher = CipherAlgo::kAes128;
  policy.qkd_mode = QkdMode::kHybrid;
  policy.qblocks_per_rekey = 1;
  policy.lifetime_seconds = 11.0;
  vpn.install_mirrored_policy(policy);
  vpn.deposit_key_material(key_material);
  vpn.start();

  // First protected packet triggers the Phase-2 negotiation of Fig. 12.
  IpPacket packet;
  packet.src = parse_ipv4("10.0.0.1");
  packet.dst = parse_ipv4("10.0.0.2");
  packet.payload = {1, 2, 3};
  vpn.a().submit_plaintext(packet, vpn.clock().now());
  vpn.advance(1.0);

  // Ride past the SA lifetime: the expiry + renegotiation lines appear,
  // matching the transcript's trailing "IPsec-SA expired ... initiate new
  // phase 2 negotiation" pair.
  fake_seconds = 43;
  vpn.advance(12.0);
  vpn.a().submit_plaintext(packet, vpn.clock().now());
  vpn.advance(1.0);

  qkd::Logger::instance().set_sink(nullptr);
  std::printf("\n(Traffic flowed a few moments later: %lu packets "
              "delivered through the tunnel.)\n",
              static_cast<unsigned long>(vpn.b().stats().delivered));
  return 0;
}
