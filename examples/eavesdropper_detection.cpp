// Eavesdropper detection: the headline security property in action.
//
//   $ ./eavesdropper_detection
//
// Eve switches an intercept-resend attack on partway through a session. Her
// measurements disturb the photons ("any eavesdropper that snoops on the
// quantum channel will cause a measurable disturbance"); the sampled QBER
// blows through the alarm threshold, batches are rejected, and no key is
// ever distilled from the disturbed frames. When she backs down to a small
// fraction, the link keeps working but the entropy estimate charges her
// take; when she unplugs, full rate resumes.
#include <cstdio>
#include <memory>

#include "src/qkd/engine.hpp"

int main() {
  using namespace qkd::proto;
  using qkd::optics::InterceptResendAttack;

  QkdLinkConfig config;
  config.frame_slots = 1 << 20;
  QkdLinkSession session(config, 7);

  struct Phase {
    const char* label;
    double intercept_fraction;
    int batches;
  };
  const Phase phases[] = {
      {"clean channel", 0.0, 3},
      {"Eve intercepts 100% of pulses", 1.0, 3},
      {"Eve throttles to 15%", 0.15, 3},
      {"Eve unplugs", 0.0, 3},
  };

  std::printf("%-32s %8s %9s %10s %s\n", "phase", "QBER%", "accepted",
              "key bits", "note");
  for (const Phase& phase : phases) {
    std::unique_ptr<InterceptResendAttack> eve;
    if (phase.intercept_fraction > 0.0)
      eve = std::make_unique<InterceptResendAttack>(phase.intercept_fraction);
    for (int i = 0; i < phase.batches; ++i) {
      const BatchResult result = session.run_batch(eve.get());
      std::printf("%-32s %8.2f %9s %10zu %s\n", i == 0 ? phase.label : "",
                  100.0 * result.qber_actual,
                  result.accepted ? "yes" : "NO", result.distilled_bits,
                  result.accepted ? "" : abort_reason_name(result.reason));
    }
  }

  std::printf("\nTotal distilled: %zu bits; batches aborted by the QBER "
              "alarm: %zu\n",
              session.totals().distilled_bits,
              session.totals().aborted_qber());
  std::printf("Eve never obtained key material from an accepted batch: the\n"
              "entropy estimate subtracts her maximum possible knowledge\n"
              "before privacy amplification compresses it away.\n");
  return 0;
}
