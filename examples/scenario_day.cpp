// One scripted hour in the life of the QKD network — the discrete-event
// scenario engine driving the whole stack on a single virtual timeline.
//
//   $ ./scenario_day
//
// A 6-relay ring with two endpoints distills pairwise key around the clock
// while scripted operations traffic arrives: end-to-end key requests every
// five minutes, Eve camping on a fiber at 00:10 (QBER alarm, link
// abandoned, mesh reroutes), a backhoe cut elsewhere at 00:30, repairs, and
// a relay compromise near the end of the hour. Nothing is hand-interleaved:
// every action is an event on the EventScheduler, distillation accrues on
// scheduled ticks, and the TimelineRecorder samples the network once a
// simulated minute. The hour simulates in well under a second of wall time.
#include <cstdio>

#include "src/sim/scenario.hpp"

using namespace qkd;
using namespace qkd::sim;
using qkd::network::MeshSimulation;
using qkd::network::NodeId;
using qkd::network::Topology;

int main() {
  // relay_ring(6): relays 0..5 (ring links 0..5), alice = node 6 on link 6,
  // bob = node 7 on link 7. Two disjoint relay paths east/west.
  MeshSimulation mesh(Topology::relay_ring(6), 2003);
  const NodeId alice = 6, bob = 7;

  Scenario day;
  // Operations traffic: a 256-bit end-to-end key every five minutes.
  for (SimTime t = 5 * kMinute; t < kHour; t += 5 * kMinute)
    day.at(t, KeyRequest{alice, bob, 256});
  // 00:10 Eve camps on ring link 1 (relay1-relay2): alarm, abandoned.
  day.at(10 * kMinute, StartEavesdrop{1, 1.0});
  // 00:30 a backhoe finds the west side's link 4 (relay4-relay5).
  day.at(30 * kMinute, CutLink{4});
  // 00:38 Eve gives up; the eavesdropped fiber is trusted again.
  day.at(38 * kMinute, StopEavesdrop{1});
  // 00:45 the splice crew restores the cut fiber.
  day.at(45 * kMinute, RestoreLink{4});
  // 00:50 worse news: relay 2 is discovered compromised.
  day.at(50 * kMinute, CompromiseNode{2});

  ScenarioRunner::Config config;
  config.sample_interval = kMinute;
  ScenarioRunner runner(day, config);
  runner.attach_mesh(mesh);
  const std::size_t dispatched = runner.run(kHour);

  std::printf("== one scripted network hour (%zu events dispatched) ==\n\n",
              dispatched);
  std::printf("%s\n", runner.recorder().render().c_str());

  std::printf("-- key requests --\n");
  for (const auto& outcome : runner.key_requests()) {
    std::printf("  %02lld:%02lld  %s",
                static_cast<long long>(outcome.at / kHour),
                static_cast<long long>((outcome.at / kMinute) % 60),
                outcome.result.success ? "delivered" : "FAILED   ");
    if (outcome.result.success) {
      std::printf("  via [");
      for (std::size_t i = 0; i < outcome.result.route.nodes.size(); ++i)
        std::printf("%s%u", i ? " " : "", outcome.result.route.nodes[i]);
      std::printf("]%s",
                  outcome.result.compromised ? "  ** SEEN BY EVE **" : "");
    }
    std::printf("\n");
  }

  const auto& stats = mesh.stats();
  std::printf(
      "\n-- the hour in numbers --\n"
      "  transports: %llu attempted, %llu delivered, %llu rerouted,\n"
      "              %llu exposed to a compromised relay\n",
      static_cast<unsigned long long>(stats.transports_attempted),
      static_cast<unsigned long long>(stats.transports_succeeded),
      static_cast<unsigned long long>(stats.reroutes),
      static_cast<unsigned long long>(stats.transports_compromised));
  return 0;
}
