// The full system of Figs. 2 and 11: a QKD-keyed IPsec VPN between two
// private enclaves.
//
//   $ ./vpn_tunnel
//
// A simulated weak-coherent link continuously distills key material; the
// engine feed delivers every accepted batch into both gateways' supplies
// (two sinks of one key stream — no hand-mirrored deposits). IKE Phase 2
// pulls Qblocks into the keying material of ESP security associations; AES
// keys roll over every 20 simulated seconds; red-side packets are tunneled
// encrypted across the black network. A second tunnel runs as a pure
// one-time pad, consuming pool bits per byte of traffic.
#include <cstdio>

#include "src/ipsec/vpn_sim.hpp"
#include "src/qkd/engine.hpp"

using namespace qkd::ipsec;

namespace {

SpdEntry make_policy(const char* name, CipherAlgo cipher, QkdMode mode,
                     const char* src_net, const char* dst_net,
                     double lifetime_s) {
  SpdEntry entry;
  entry.name = name;
  entry.selector.src_prefix = parse_ipv4(src_net);
  entry.selector.src_mask = 0xffffff00;
  entry.selector.dst_prefix = parse_ipv4(dst_net);
  entry.selector.dst_mask = 0xffffff00;
  entry.action = PolicyAction::kProtect;
  entry.cipher = cipher;
  entry.qkd_mode = mode;
  entry.lifetime_seconds = lifetime_s;
  return entry;
}

IpPacket red_packet(const char* src, const char* dst, int tag) {
  IpPacket packet;
  packet.src = parse_ipv4(src);
  packet.dst = parse_ipv4(dst);
  packet.payload = qkd::Bytes{0xde, 0xad, static_cast<std::uint8_t>(tag)};
  return packet;
}

}  // namespace

int main() {
  // --- The VPN: two gateways over the public channel, keyed by a real
  // engine feed (both gateway supplies are sinks of one link's stream). ----
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 5);
  vpn.install_mirrored_policy(make_policy("aes-tunnel", CipherAlgo::kAes128,
                                          QkdMode::kHybrid, "10.1.1.0",
                                          "10.2.2.0", 20.0));
  vpn.install_mirrored_policy(make_policy("otp-tunnel",
                                          CipherAlgo::kOneTimePad,
                                          QkdMode::kOtp, "10.1.9.0",
                                          "10.2.9.0", 3600.0));
  qkd::proto::QkdLinkConfig qkd_config;
  qkd_config.frame_slots = 1 << 20;
  vpn.enable_engine_feed(qkd_config, /*seed=*/2002);
  // Let the link preposition some key before traffic starts.
  vpn.advance(4.0);
  vpn.start();

  const auto& qkd = vpn.key_service()->session(0);
  std::printf("minute-by-minute VPN + QKD run (AES rekey every 20 s):\n");
  std::printf("%4s %10s %10s %10s %9s %9s %8s\n", "t(s)", "distilled",
              "pool bits", "esp sent", "delivered", "rollovers", "authfail");

  for (int step = 0; step < 12; ++step) {
    // Red-side traffic on both tunnels; the engine feed distills in the
    // background as simulated time advances.
    for (int i = 0; i < 5; ++i) {
      vpn.a().submit_plaintext(red_packet("10.1.1.5", "10.2.2.9", i),
                               vpn.clock().now());
      vpn.a().submit_plaintext(red_packet("10.1.9.5", "10.2.9.9", i),
                               vpn.clock().now());
      vpn.advance(2.0);
    }
    std::printf("%4.0f %10zu %10zu %10lu %9lu %9lu %8lu\n",
                vpn.clock().seconds(), qkd.totals().distilled_bits,
                vpn.a().key_pool().available_bits(),
                static_cast<unsigned long>(vpn.a().stats().esp_sent),
                static_cast<unsigned long>(vpn.b().stats().delivered),
                static_cast<unsigned long>(vpn.a().stats().sa_rollovers),
                static_cast<unsigned long>(vpn.b().stats().auth_failures));
  }

  std::printf("\nIKE consumed %lu Qblocks across %lu Phase-2 negotiations; "
              "every AES key was seeded from quantum-distilled bits.\n",
              static_cast<unsigned long>(vpn.a().ike().stats().qblocks_consumed),
              static_cast<unsigned long>(
                  vpn.a().ike().stats().phase2_completed +
                  vpn.a().ike().stats().phase2_responded));
  return 0;
}
