// The Section 8 network: trusted relays, fiber cuts, eavesdropping, and the
// untrusted-switch alternative.
//
//   $ ./relay_network
//
// Builds a 6-relay ring with two endpoints, lets the links distill pairwise
// key, and transports end-to-end keys hop by hop. Then the resilience story:
// a backhoe cuts a fiber (reroute), Eve camps on another link (QBER alarm,
// abandoned, reroute), and finally the same endpoints try an all-optical
// untrusted-switch path and discover what switch insertion loss does to
// reach.
#include <cstdio>

#include "src/network/key_transport.hpp"
#include "src/network/switch_network.hpp"

using namespace qkd::network;

namespace {

void report(const char* label, const MeshSimulation::TransportResult& r) {
  std::printf("%-34s %s", label, r.success ? "delivered" : "FAILED");
  if (r.success) {
    std::printf(" via [");
    for (std::size_t i = 0; i < r.route.nodes.size(); ++i)
      std::printf("%s%u", i ? " " : "", r.route.nodes[i]);
    std::printf("], %zu relays saw the key, %zu pool bits spent",
                r.exposed_to.size(), r.pool_bits_consumed);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  MeshSimulation mesh(Topology::relay_ring(6), 42);
  const NodeId alice = 6, bob = 7;

  std::printf("== trusted relay mesh (6-relay ring, alice=6, bob=7) ==\n");
  mesh.step(120.0);  // two minutes of pairwise distillation
  std::printf("pairwise link pools after 120 s: ~%.0f bits/link\n\n",
              mesh.link_pool_bits(0));

  report("normal transport (256-bit key):",
         mesh.transport_key(alice, bob, 256));

  // A fiber cut on the active path.
  const auto first = mesh.transport_key(alice, bob, 256);
  mesh.cut_link(first.route.links[1]);
  std::printf("\n-- backhoe cuts link %u --\n", first.route.links[1]);
  report("after fiber cut:", mesh.transport_key(alice, bob, 256));

  // Eve camps on the detour.
  const auto detour = mesh.transport_key(alice, bob, 256);
  const double qber = mesh.eavesdrop_link(detour.route.links[1], 1.0);
  std::printf("\n-- Eve intercept-resends on link %u: QBER -> %.1f%%, link "
              "abandoned --\n",
              detour.route.links[1], 100.0 * qber);
  report("after eavesdropping:", mesh.transport_key(alice, bob, 256));
  std::printf("reroutes so far: %lu\n",
              static_cast<unsigned long>(mesh.stats().reroutes));
  std::printf("(a ring offers exactly two disjoint relay paths; surviving a\n"
              " second failure requires more links — \"as much redundancy as\n"
              " desired simply by adding more links and relays\", Sec. 8)\n");

  // The same idea keyed by real engines: every link's pairwise pool is a
  // KeySupply filled by its own QkdLinkSession, and the hop-by-hop pads
  // are bits actually withdrawn from those supplies.
  std::printf("\n== engine-backed mesh (pads drawn through each link's "
              "KeySupply) ==\n");
  LinkKeyService::Config engine;
  engine.proto.frame_slots = 1 << 19;
  engine.proto.auth_replenish_bits = 64;
  MeshSimulation engine_mesh(Topology::relay_ring(4), 7, engine);
  const auto& session0 = engine_mesh.key_service()->session(0);
  const double frame_s =
      session0.link().frame_duration_s(session0.config().frame_slots);
  engine_mesh.step(6.0 * frame_s);
  std::printf("supply depth after 6 Qframes/link:");
  for (LinkId id = 0; id < engine_mesh.topology().link_count(); ++id)
    std::printf(" %.0f", engine_mesh.link_pool_bits(id));
  std::printf(" bits\n");
  report("engine-mesh transport (64-bit key):",
         engine_mesh.transport_key(4, 5, 64));

  // The untrusted-switch alternative.
  std::printf("\n== untrusted photonic switches (no relay ever sees the key) ==\n");
  std::printf("%8s %12s %10s %12s\n", "switches", "fiber (km)", "QBER%",
              "key (bit/s)");
  for (std::size_t switches : {0u, 1u, 2u, 4u, 6u}) {
    Topology chain;
    const NodeId a = chain.add_node("alice", NodeKind::kEndpoint);
    qkd::optics::LinkParams span;
    span.fiber_km = 10.0;
    NodeId prev = a;
    for (std::size_t i = 0; i < switches; ++i) {
      const NodeId s = chain.add_node("sw" + std::to_string(i),
                                      NodeKind::kUntrustedSwitch);
      chain.add_link(prev, s, span);
      prev = s;
    }
    const NodeId b = chain.add_node("bob", NodeKind::kEndpoint);
    chain.add_link(prev, b, span);
    const auto budget = best_switch_path(chain, a, b, 1.5);
    if (!budget.has_value()) continue;
    std::printf("%8zu %12.0f %10.2f %12.1f%s\n", switches,
                budget->total_fiber_km, 100.0 * budget->expected_qber,
                budget->distilled_rate_bps,
                budget->in_range ? "" : "  (out of range)");
  }
  std::printf("\nSwitches preserve end-to-end secrecy but shrink reach;\n"
              "relays extend reach but must be trusted — the Section 8\n"
              "trade-off, measured.\n");
  return 0;
}
