// One scripted day of the multi-tenant key management service.
//
//   $ ./example_kms_day
//
// The KMS fronts the relay mesh for a fleet of client applications in
// three QoS classes. The morning ramps five hundred clients up with three
// scenario lines; at midday Eve camps on the head-end fiber — the QBER
// alarm abandons the link, the mesh has no route, and sustained
// exhaustion sheds the bulk class first while realtime requests queue; in
// the afternoon she leaves, the pools refill, and the surviving backlog
// drains. Everything — arrivals, requests, service rounds, shedding,
// recovery — is an event on one EventScheduler, and the TimelineRecorder
// charts per-class queue depth, grants and rejections as it happens.
//
// Set QKD_TRACE_OUT=/path/trace.json to trace the midday incident window
// (one minute straddling Eve's arrival) and write it as Chrome trace JSON
// — open the file in Perfetto (ui.perfetto.dev) or feed it to
// tools/trace_report.py for per-span latency percentiles.
//
// The health engine watches the same day through the metrics registry:
// the built-in rule pack (QBER spike, pool drought, SLO burn, shed
// surge) runs as periodic evaluations on the scenario timeline, and the
// eavesdrop minute shows up as alerts transitioning pending -> firing ->
// resolved. Set QKD_INCIDENT_OUT=/path/incidents.json to write the JSON
// incident report (tools/incident_report.py renders it, and merges the
// trace with --trace).
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "src/kms/client_fleet.hpp"
#include "src/kms/kms.hpp"
#include "src/obs/export.hpp"
#include "src/obs/health/report.hpp"
#include "src/obs/health/rules.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/scenario.hpp"

using namespace qkd;
using namespace qkd::kms;
using namespace qkd::sim;
using network::MeshSimulation;
using network::NodeId;
using network::Topology;

int main() {
  // relay_ring(6): relays 0..5, alice = node 6 (tail link 6), bob = node 7.
  // The optics are run hot (GHz trigger) so the day is supply-rich when
  // the fibers are healthy — the drought below is Eve's doing, not a
  // provisioning shortfall.
  Topology topo = Topology::relay_ring(6);
  for (const network::Link& link : topo.links())
    topo.link(link.id).optics.pulse_rate_hz = 1e9;
  MeshSimulation mesh(std::move(topo), 2026);
  const NodeId alice = 6, bob = 7;

  Scenario day;
  // Morning ramp-up: monitoring, interactive sessions, then backup jobs.
  day.at(2 * kMinute, ClientArrival{alice, bob, /*qos=*/0, /*count=*/50,
                                    /*request_rate_hz=*/0.5, /*bits=*/128});
  day.at(5 * kMinute, ClientArrival{alice, bob, 1, 150, 0.5, 256});
  day.at(8 * kMinute, ClientArrival{alice, bob, 2, 300, 0.5, 512});
  // Midday: Eve camps on alice's head-end fiber. Alarm, no route, drought.
  day.at(20 * kMinute, StartEavesdrop{6, 1.0});
  // Afternoon: she gives up; the link refills and the backlog drains.
  day.at(35 * kMinute, StopEavesdrop{6});
  // Evening: the bulk cohort logs off.
  day.at(50 * kMinute, ClientDeparture{alice, bob, 2, 300});

  ScenarioRunner::Config runner_config;
  runner_config.sample_interval = 2 * kMinute;
  ScenarioRunner runner(day, runner_config);
  runner.attach_mesh(mesh);

  KeyManagementService::Config kms_config;
  kms_config.shed_after_starved_rounds = 4;
  kms_config.retry_backoff = kSecond;
  KeyManagementService kms(mesh, runner.scheduler(), kms_config);
  KmsClientFleet fleet(kms, runner.scheduler());
  runner.attach_client_driver(fleet);
  runner.recorder().attach_service(kms);

  // The health layer: every signal the rules watch flows through one
  // registry, and the engine evaluates the rule pack every ten sim
  // seconds on the same timeline the day runs on.
  obs::MetricsRegistry registry(kms.shard_count());
  mesh.bind_metrics(registry, "mesh");
  kms.bind_metrics(registry, "kms");
  obs::health::AlertEngine alerts(registry);
  // Eve's fiber is link 6 (alice's head-end); the alice->bob pair's supply
  // hangs off it, so its pool is the drought signal for the pair.
  alerts.add_rule(obs::health::rules::qber_spike("mesh_link6_qber_percent",
                                                "6"));
  alerts.add_rule(obs::health::rules::pool_drought("mesh_link6_pool_bits",
                                                   "6->7"));
  alerts.add_rule(obs::health::rules::grant_slo_burn(
      "kms_interactive_granted_within_slo", "kms_interactive_granted",
      "interactive"));
  alerts.add_rule(obs::health::rules::shed_surge("kms_bulk_shed", "bulk"));
  alerts.bind_alerts(registry);
  runner.attach_alerts(alerts, 10 * kSecond);

  // Optional tracing: the full day would record millions of spans, so the
  // trace covers the interesting minute — thirty seconds of healthy
  // service, then Eve's arrival and the starvation that follows.
  const char* trace_out = std::getenv("QKD_TRACE_OUT");
  obs::Tracer tracer(kms.shard_count());
  if (trace_out != nullptr) {
    tracer.set_sim_time_source(
        [&runner] { return runner.scheduler().now(); });
    kms.set_tracer(&tracer);
    mesh.set_tracer(&tracer);
    runner.scheduler().at(
        19 * kMinute + 30 * kSecond,
        [&tracer](SimTime) { tracer.set_enabled(true); });
    runner.scheduler().at(
        20 * kMinute + 30 * kSecond,
        [&tracer](SimTime) { tracer.set_enabled(false); });
  }

  const std::size_t dispatched = runner.run(kHour);

  std::printf(
      "== a KMS day: %zu clients served over the mesh (%zu events) ==\n\n",
      fleet.active_clients() + 300, dispatched);
  std::printf("%s\n", runner.recorder().render().c_str());

  std::printf("-- the day per QoS class --\n");
  std::printf("%-12s %10s %10s %10s %8s %9s\n", "class", "requests",
              "granted", "rejected", "shed", "p99 ms");
  for (std::size_t qos = 0; qos < kQosClassCount; ++qos) {
    const auto& stats = kms.class_stats(static_cast<QosClass>(qos));
    std::printf("%-12s %10llu %10llu %10llu %8llu %9.1f\n",
                qos_class_name(static_cast<QosClass>(qos)),
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.granted),
                static_cast<unsigned long long>(stats.rejected_queue_full),
                static_cast<unsigned long long>(stats.shed),
                1e3 * kms.p99_grant_latency_s(static_cast<QosClass>(qos)));
  }

  const auto& service = kms.stats();
  std::printf(
      "\n-- service internals --\n"
      "  relay frames: %llu for %llu grants (%.1f grants/frame batching)\n"
      "  starved rounds: %llu, shed events: %llu (bulk first, realtime "
      "never)\n"
      "  peer claims matched: %llu of %llu grants (key-ID agreement)\n",
      static_cast<unsigned long long>(service.transports),
      static_cast<unsigned long long>(fleet.stats().granted),
      service.transports != 0
          ? static_cast<double>(fleet.stats().granted) /
                static_cast<double>(service.transports)
          : 0.0,
      static_cast<unsigned long long>(service.starved_rounds),
      static_cast<unsigned long long>(service.shed_events),
      static_cast<unsigned long long>(fleet.stats().claims_matched),
      static_cast<unsigned long long>(fleet.stats().granted));

  const std::string csv = runner.recorder().to_csv();
  std::printf(
      "\n-- recorder.to_csv(): %zu bytes, plottable per-class series --\n",
      csv.size());
  std::printf("%s", csv.substr(0, csv.find('\n') + 1).c_str());

  // The day as the on-call rotation saw it: every lifecycle transition,
  // then one line per assembled incident.
  std::printf("\n-- alerts: the day as incidents --\n");
  for (const auto& t : alerts.transitions())
    std::printf("  t=%6.0fs  %-24s %s -> %s\n", sim_to_seconds(t.at),
                t.rule.c_str(), obs::health::alert_state_name(t.from),
                obs::health::alert_state_name(t.to));
  for (const auto& incident : alerts.incidents()) {
    char resolved[48];
    if (incident.resolved())
      std::snprintf(resolved, sizeof resolved, "resolved t=%.0fs",
                    sim_to_seconds(incident.resolved_at));
    else
      std::snprintf(resolved, sizeof resolved, "still firing");
    std::printf("  incident: %s fired t=%.0fs, %s (peak %.3g) — %s\n",
                incident.rule.c_str(), sim_to_seconds(incident.firing_at),
                resolved, incident.peak_value, incident.summary.c_str());
  }

  if (const char* incident_out = std::getenv("QKD_INCIDENT_OUT")) {
    obs::health::write_incident_report(alerts, incident_out);
    std::printf(
        "\n-- incident report -> %s --\n"
        "   render with tools/incident_report.py (merge the trace via "
        "--trace)\n",
        incident_out);
  }

  if (trace_out != nullptr) {
    const std::string json = obs::chrome_trace_json(tracer);
    std::ofstream out(trace_out);
    out << json;
    std::printf(
        "\n-- trace: %zu spans over the incident minute -> %s (%zu KiB) --\n"
        "   load in Perfetto (ui.perfetto.dev) or run "
        "tools/trace_report.py on it\n",
        tracer.span_count(), trace_out, json.size() / 1024);
  }
  return 0;
}
