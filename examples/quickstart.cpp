// Quickstart: distill quantum key material over a simulated weak-coherent
// link — the smallest end-to-end use of the library.
//
//   $ ./quickstart
//
// Builds the paper's reference link (1 MHz trigger, mu = 0.1, 10 km fiber,
// ~6 % QBER), pushes Qframes through the full protocol stack (sifting,
// Cascade, entropy estimation, privacy amplification, Wegman-Carter
// authentication) and prints what happened to every bit along the way.
#include <cstdio>

#include "src/optics/link_model.hpp"
#include "src/qkd/engine.hpp"

int main() {
  using namespace qkd::proto;

  QkdLinkConfig config;           // defaults = the paper's operating point
  config.frame_slots = 1 << 20;   // ~1 s of link time per batch at 1 MHz
  QkdLinkSession session(config, /*seed=*/2003);

  std::printf("DARPA Quantum Network reproduction — quickstart\n");
  std::printf("link: %.0f km fiber, mu=%.2f, %.1f MHz trigger, ~%.1f%% QBER\n\n",
              config.link.fiber_km, config.link.mean_photon_number,
              config.link.pulse_rate_hz / 1e6,
              100.0 * qkd::optics::LinkModel(config.link).expected_qber());

  std::printf("%6s %10s %10s %8s %8s %7s %10s %10s\n", "batch", "pulses",
              "detected", "sifted", "errors", "QBER%", "disclosed",
              "distilled");
  for (int batch = 0; batch < 5; ++batch) {
    const BatchResult result = session.run_batch();
    std::printf("%6d %10zu %10zu %8zu %8zu %7.2f %10zu %10zu  %s\n", batch,
                result.pulses, result.detections, result.sifted_bits,
                result.errors_corrected, 100.0 * result.qber_actual,
                result.disclosed_bits, result.distilled_bits,
                result.accepted ? "" : abort_reason_name(result.reason));
  }

  const SessionTotals& totals = session.totals();
  std::printf("\n%zu/%zu batches accepted; %zu bits distilled in %.1f s "
              "=> %.0f bit/s of quantum key material\n",
              totals.accepted_batches, totals.batches, totals.distilled_bits,
              totals.duration_s, totals.distilled_rate_bps());
  std::printf("(the paper quotes ~1,000 bit/s for the era's systems; the 5 "
              "MHz max trigger reaches it — see bench_throughput)\n");
  return 0;
}
