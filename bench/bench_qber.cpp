// E2 (Sec. 4 operating point): "our weak-coherent link is operating with a
// 1 MHz pulse repetition rate, mean photon-emission number of 0.1 photons
// per pulse, and approximately a 6-8% Quantum Bit Error Rate (QBER)".
//
// Regenerates the operating-point QBER and its decomposition, then sweeps
// the two dials the physicists tuned: mean photon number (brightness vs.
// PNS exposure) and detector dark counts (cooling).
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.hpp"
#include "src/optics/link.hpp"
#include "src/optics/link_model.hpp"

namespace {

using namespace qkd::optics;

struct MeasuredQber {
  double qber;
  double sift_per_pulse;
  std::size_t dark_clicks;
  std::size_t signal_clicks;
};

MeasuredQber measure(const LinkParams& params, std::uint64_t seed,
                     std::size_t slots = 2000000) {
  WeakCoherentLink link(params, seed);
  std::size_t sifted = 0, errors = 0;
  const FrameResult frame = link.run_frame(slots);
  for (std::size_t slot = 0; slot < frame.bob.size(); ++slot) {
    if (!frame.bob.detected.get(slot)) continue;
    if (frame.alice.bases.get(slot) != frame.bob.bases.get(slot)) continue;
    ++sifted;
    errors += frame.alice.values.get(slot) != frame.bob.bits.get(slot);
  }
  MeasuredQber out;
  out.qber = sifted ? static_cast<double>(errors) / sifted : 0.0;
  out.sift_per_pulse = static_cast<double>(sifted) / slots;
  out.dark_clicks = link.stats().dark_only_clicks;
  out.signal_clicks = link.stats().signal_clicks;
  return out;
}

void print_table() {
  qkd::bench::heading(
      "E2", "Sec. 4: QBER at the paper's operating point and nearby");

  {
    const LinkParams params;  // defaults = the paper's link
    const LinkModel model(params);
    const MeasuredQber mc = measure(params, 42);
    qkd::bench::row("operating point: mu=%.2f, %.0f km, -30C APDs",
                    params.mean_photon_number, params.fiber_km);
    qkd::bench::row("  QBER: paper 6-8%%   analytic %.2f%%   Monte-Carlo %.2f%%",
                    100.0 * model.expected_qber(), 100.0 * mc.qber);
    qkd::bench::row("  dark/signal click ratio: %zu / %zu", mc.dark_clicks,
                    mc.signal_clicks);
  }

  qkd::bench::row("");
  qkd::bench::row("mean-photon-number sweep (10 km):");
  qkd::bench::row("%8s %12s %12s %16s %16s", "mu", "QBER MC%", "QBER law%",
                  "sifted/pulse", "P[multi-photon]");
  for (double mu : {0.05, 0.1, 0.2, 0.5, 1.0}) {
    LinkParams params;
    params.mean_photon_number = mu;
    const LinkModel model(params);
    const MeasuredQber mc = measure(params, 7, 1000000);
    const double p_multi = 1.0 - std::exp(-mu) * (1.0 + mu);
    qkd::bench::row("%8.2f %12.2f %12.2f %16.5f %16.5f", mu, 100.0 * mc.qber,
                    100.0 * model.expected_qber(), mc.sift_per_pulse,
                    p_multi);
  }

  qkd::bench::row("");
  qkd::bench::row("dark-count sweep (detector cooling; 10 km):");
  qkd::bench::row("%14s %12s %12s", "p_dark/gate", "QBER MC%", "QBER law%");
  for (double dark : {1e-6, 1e-5, 1e-4, 1e-3}) {
    LinkParams params;
    params.dark_count_prob = dark;
    const LinkModel model(params);
    const MeasuredQber mc = measure(params, 11, 1000000);
    qkd::bench::row("%14.0e %12.2f %12.2f", dark, 100.0 * mc.qber,
                    100.0 * model.expected_qber());
  }
}

void bm_qber_measurement(benchmark::State& state) {
  const LinkParams params;
  std::uint64_t seed = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure(params, seed++, 1 << 16));
  }
}
BENCHMARK(bm_qber_measurement);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
