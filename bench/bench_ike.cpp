// E10/E11 (Sec. 7): the IPsec/IKE extensions under load.
//
// E10 — the key-consumption race: AES-reseed tunnels sip one Qblock per
// rekey; one-time-pad tunnels drink pad in proportion to traffic. Sweeping
// the rekey interval against a fixed QKD supply shows where each mode
// starves ("This is a race between the rate at which keying material is put
// into place and the rate at which it is consumed").
//
// E11 — the mismatched-bits failure: "all security associations that employ
// key bits derived from this corrupted information will fail to properly
// encrypt / decrypt traffic ... until the security association is renewed."
// Measures the blackout as a function of the SA lifetime.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/common/rng.hpp"
#include "src/ipsec/vpn_sim.hpp"

namespace {

using namespace qkd::ipsec;

SpdEntry tunnel_policy(CipherAlgo cipher, QkdMode mode, double lifetime_s) {
  SpdEntry entry;
  entry.name = "tunnel";
  entry.selector.src_prefix = parse_ipv4("10.1.0.0");
  entry.selector.src_mask = 0xffff0000;
  entry.selector.dst_prefix = parse_ipv4("10.2.0.0");
  entry.selector.dst_mask = 0xffff0000;
  entry.action = PolicyAction::kProtect;
  entry.cipher = cipher;
  entry.qkd_mode = mode;
  // An OTP tunnel drinks a Qblock per ~1 KB of traffic; negotiating one
  // block at a time would thrash IKE, so pad SAs request bigger withdrawals.
  entry.qblocks_per_rekey = mode == QkdMode::kOtp ? 16 : 1;
  entry.lifetime_seconds = lifetime_s;
  return entry;
}

IpPacket traffic_packet(int tag) {
  IpPacket packet;
  packet.src = parse_ipv4("10.1.0.5");
  packet.dst = parse_ipv4("10.2.0.9");
  packet.payload.assign(100, static_cast<std::uint8_t>(tag));
  return packet;
}

/// Runs a tunnel for `minutes` with a steady key supply and traffic load;
/// returns (delivered packets, starvation events).
struct RaceOutcome {
  std::uint64_t delivered;
  std::uint64_t starved;
  std::uint64_t rollovers;
};

RaceOutcome run_race(CipherAlgo cipher, QkdMode mode, double rekey_s,
                     double supply_bps, int packets_per_second) {
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 77);
  vpn.install_mirrored_policy(tunnel_policy(cipher, mode, rekey_s));
  qkd::Rng key_rng(5);
  vpn.deposit_key_material(key_rng.next_bits(8192));  // prime the pools
  vpn.start();
  const double total_s = 120.0;
  for (double t = 0.0; t < total_s; t += 1.0) {
    vpn.deposit_key_material(
        key_rng.next_bits(static_cast<std::size_t>(supply_bps)));
    for (int i = 0; i < packets_per_second; ++i)
      vpn.a().submit_plaintext(traffic_packet(i), vpn.clock().now());
    vpn.advance(1.0);
  }
  return RaceOutcome{vpn.b().stats().delivered,
                     vpn.a().stats().otp_exhausted +
                         vpn.a().ike().stats().failed_otp_negotiations,
                     vpn.a().stats().sa_rollovers};
}

void print_race_table() {
  qkd::bench::heading("E10", "Sec. 2/7: the key-consumption race");
  qkd::bench::row("120 s run, 5 packets/s of 100-byte traffic, QKD supply "
                  "sweep:");
  qkd::bench::row("%12s %10s | %10s %8s | %10s %8s", "supply b/s",
                  "rekey (s)", "AES deliv", "stalls", "OTP deliv", "stalls");
  for (double supply : {200.0, 1000.0, 5000.0}) {
    for (double rekey : {10.0, 60.0}) {
      const RaceOutcome aes =
          run_race(CipherAlgo::kAes128, QkdMode::kHybrid, rekey, supply, 5);
      const RaceOutcome otp =
          run_race(CipherAlgo::kOneTimePad, QkdMode::kOtp, rekey, supply, 5);
      qkd::bench::row("%12.0f %10.0f | %10lu %8lu | %10lu %8lu", supply,
                      rekey, static_cast<unsigned long>(aes.delivered),
                      static_cast<unsigned long>(aes.starved),
                      static_cast<unsigned long>(otp.delivered),
                      static_cast<unsigned long>(otp.starved));
    }
  }
  qkd::bench::row("(AES mode runs on ~17-100 bit/s of key; the one-time pad "
                  "needs supply >= ~3x traffic — ~4,800 bit/s of payload "
                  "plus keymat and the unused reverse-direction pad — the "
                  "Sec. 2 argument for using QKD bits as AES seeds)");
}

void print_mismatch_table() {
  qkd::bench::heading("E11", "Sec. 7: mismatched Qblocks -> blackout until rollover");
  qkd::bench::row("%14s %16s %18s", "SA lifetime", "blackout (s)",
                  "packets lost");
  for (double lifetime : {5.0, 15.0, 30.0, 60.0}) {
    VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 99);
    vpn.install_mirrored_policy(
        tunnel_policy(CipherAlgo::kAes128, QkdMode::kHybrid, lifetime));
    qkd::Rng rng(9);
    // First Qblock corrupted on one side; the rest clean.
    vpn.deposit_key_material(rng.next_bits(1024), /*corrupt_b=*/true);
    vpn.deposit_key_material(rng.next_bits(64 * 1024));
    vpn.start();
    double healed_at = -1.0;
    std::uint64_t lost = 0;
    std::uint64_t delivered_before = 0;
    for (double t = 0.0; t < lifetime * 2 + 20 && healed_at < 0; t += 1.0) {
      vpn.a().submit_plaintext(traffic_packet(1), vpn.clock().now());
      vpn.advance(1.0);
      if (vpn.b().stats().delivered > delivered_before) {
        healed_at = t;
      } else {
        ++lost;
      }
      delivered_before = vpn.b().stats().delivered;
    }
    qkd::bench::row("%14.0f %16.1f %18lu", lifetime, healed_at,
                    static_cast<unsigned long>(lost));
  }
  qkd::bench::row("(IKE itself never notices — recovery waits for the SA "
                  "lifetime; \"some pressure for adjusting the QKD error "
                  "correction protocols towards a low residual bit error "
                  "rate\")");
}

void bm_vpn_roundtrip(benchmark::State& state) {
  VpnLinkSimulation vpn(VpnLinkSimulation::Params{}, 3);
  vpn.install_mirrored_policy(
      tunnel_policy(CipherAlgo::kAes128, QkdMode::kHybrid, 3600.0));
  qkd::Rng rng(3);
  vpn.deposit_key_material(rng.next_bits(64 * 1024));
  vpn.start();
  vpn.a().submit_plaintext(traffic_packet(0), vpn.clock().now());
  vpn.advance(1.0);
  int tag = 0;
  for (auto _ : state) {
    vpn.a().submit_plaintext(traffic_packet(tag++), vpn.clock().now());
    vpn.pump();
    benchmark::DoNotOptimize(vpn.b().drain_delivered());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_vpn_roundtrip);

}  // namespace

int main(int argc, char** argv) {
  print_race_table();
  print_mismatch_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
