// E17: the unified key-delivery layer under load.
//
// The paper frames key delivery as a race between supply and consumption
// ("Sufficiently Rapid Key Delivery", Sec. 2); this experiment measures the
// consumption side of the new KeySupply seam. Two tables:
//
//  * Supply request latency and throughput vs. pool depth — Qblock/lane
//    requests (the IKE path), reserve/release round trips (the OTP offer
//    path), and linear FIFO requests (the relay-transport path), each at
//    several reservoir depths so compaction and lane bookkeeping costs are
//    visible.
//  * Producer delivery — a single-link QkdLinkSession and a relay-ring
//    LinkKeyService (one engine per link, parallel distillation) filling
//    their supplies, then consumers draining them through the same
//    interface the VPN and mesh layers use.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.hpp"
#include "src/common/rng.hpp"
#include "src/keystore/key_pool.hpp"
#include "src/network/key_service.hpp"
#include "src/qkd/engine.hpp"

namespace {

using qkd::keystore::KeyPool;
using qkd::keystore::KeySupply;

constexpr std::size_t kQ = KeySupply::kQblockBits;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Nanoseconds per request_qblocks(1) at a sustained pool depth (each
/// withdrawal is immediately re-deposited so the depth stays put).
double qblock_request_ns(std::size_t depth_bits, std::size_t iterations) {
  qkd::Rng rng(1);
  KeyPool pool("bench");
  pool.deposit(rng.next_bits(depth_bits));
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iterations; ++i) {
    auto block = pool.request_qblocks(1, i & 1u);
    benchmark::DoNotOptimize(block);
    pool.deposit(block->bits);  // hold depth constant
  }
  return 1e9 * seconds_since(start) / static_cast<double>(iterations);
}

/// Nanoseconds per reserve+release round trip (the abandoned-offer path).
double reserve_release_ns(std::size_t depth_bits, std::size_t iterations) {
  qkd::Rng rng(2);
  KeyPool pool("bench");
  pool.deposit(rng.next_bits(depth_bits));
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iterations; ++i) {
    auto block = pool.reserve_qblocks(3, 0);
    benchmark::DoNotOptimize(block);
    pool.release(block->key_id);
  }
  return 1e9 * seconds_since(start) / static_cast<double>(iterations);
}

/// Linear-framing throughput in bits/s (the relay-transport path).
double linear_drain_bps(std::size_t depth_bits, std::size_t chunk_bits) {
  qkd::Rng rng(3);
  KeyPool pool("bench");
  pool.deposit(rng.next_bits(depth_bits));
  std::size_t drained = 0;
  const auto start = std::chrono::steady_clock::now();
  while (pool.available_bits() >= chunk_bits) {
    auto block = pool.request_bits(chunk_bits);
    benchmark::DoNotOptimize(block);
    drained += chunk_bits;
  }
  return static_cast<double>(drained) / seconds_since(start);
}

void print_request_table() {
  qkd::bench::heading("E17a",
                      "KeySupply request cost vs. reservoir depth");
  qkd::bench::row("%12s %16s %18s %16s", "pool depth", "Qblock req (ns)",
                  "reserve+rel (ns)", "linear (Mbit/s)");
  for (std::size_t depth_blocks : {16u, 256u, 4096u}) {
    const std::size_t depth = depth_blocks * kQ;
    qkd::bench::row("%9zu Qb %16.0f %18.0f %16.1f", depth_blocks,
                    qblock_request_ns(depth, 20000),
                    reserve_release_ns(depth, 20000),
                    linear_drain_bps(depth, 256) / 1e6);
  }
  qkd::bench::row("(request = reserve + acknowledge in one step; the laned "
                  "paths stay O(1) with depth — compaction amortizes — so "
                  "IKE rekey cost does not grow with the reservoir)");
}

void print_producer_table() {
  qkd::bench::heading("E17b",
                      "producer delivery: engine -> KeySupply -> consumer");
  qkd::proto::QkdLinkConfig proto;
  proto.frame_slots = 1 << 19;
  proto.auth_replenish_bits = 64;

  // Single link: one QkdLinkSession producing into its own supply.
  {
    qkd::proto::QkdLinkSession session(proto, 17);
    const auto start = std::chrono::steady_clock::now();
    session.produce_batches(4);
    const double wall = seconds_since(start);
    const std::size_t bits = session.supply(0).available_bits();
    qkd::bench::row("%-26s %8zu bits in %6.2f s host (%7.0f bit/s host)",
                    "single-link producer:", bits, wall,
                    static_cast<double>(bits) / wall);
  }

  // Mesh: one engine per relay-ring link, parallel distillation, then a
  // consumer draining every supply through request_bits.
  {
    const auto topo = qkd::network::Topology::relay_ring(4);
    qkd::network::LinkKeyService::Config config;
    config.proto = proto;
    config.seed = 17;
    qkd::network::LinkKeyService service(topo, config);
    const auto start = std::chrono::steady_clock::now();
    service.run_batches(4);
    const double wall = seconds_since(start);
    std::size_t total = 0;
    for (std::size_t id = 0; id < service.supply_count(); ++id)
      total += service.supply(id).available_bits();
    qkd::bench::row("%-26s %8zu bits in %6.2f s host across %zu links",
                    "relay-ring(4) producer:", total, wall,
                    service.link_count());
    std::size_t drained = 0;
    const auto drain_start = std::chrono::steady_clock::now();
    for (std::size_t id = 0; id < service.supply_count(); ++id) {
      while (auto block = service.supply(id).request_bits(64)) {
        benchmark::DoNotOptimize(block);
        drained += 64;
        if (service.supply(id).available_bits() < 64) break;
      }
    }
    qkd::bench::row("%-26s %8zu bits at %7.1f Mbit/s host",
                    "consumer drain (64 b asks):", drained,
                    static_cast<double>(drained) /
                        seconds_since(drain_start) / 1e6);
  }
  qkd::bench::row("(the same KeySupply verbs serve IKE Qblock rekeys, OTP "
                  "pad earmarks and relay-hop pads; producers mirror one "
                  "stream into any number of attached sinks)");
}

// ---- timing kernels --------------------------------------------------------

void bm_request_qblock(benchmark::State& state) {
  qkd::Rng rng(4);
  KeyPool pool("bench");
  pool.deposit(rng.next_bits(static_cast<std::size_t>(state.range(0)) * kQ));
  unsigned lane = 0;
  for (auto _ : state) {
    auto block = pool.request_qblocks(1, lane ^= 1u);
    benchmark::DoNotOptimize(block);
    pool.deposit(block->bits);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_request_qblock)->Arg(16)->Arg(4096);

void bm_reserve_release(benchmark::State& state) {
  qkd::Rng rng(5);
  KeyPool pool("bench");
  pool.deposit(rng.next_bits(256 * kQ));
  for (auto _ : state) {
    auto block = pool.reserve_qblocks(3, 0);
    benchmark::DoNotOptimize(block);
    pool.release(block->key_id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_reserve_release);

void bm_request_bits(benchmark::State& state) {
  qkd::Rng rng(6);
  KeyPool pool("bench");
  pool.deposit(rng.next_bits(1 << 22));
  for (auto _ : state) {
    auto block = pool.request_bits(256);
    benchmark::DoNotOptimize(block);
    if (pool.available_bits() < 256) {
      state.PauseTiming();
      pool = KeyPool("bench");
      pool.deposit(rng.next_bits(1 << 22));
      state.ResumeTiming();
    }
  }
  state.SetBytesProcessed(state.iterations() * 32);
}
BENCHMARK(bm_request_bits);

}  // namespace

int main(int argc, char** argv) {
  print_request_table();
  print_producer_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
