// E16: stage-latency decomposition of the distillation pipeline.
//
// Gilbert & Hamrick (quant-ph/0106043) argue the computational load of each
// distillation stage must be measured independently to judge practicality;
// BatchResult::stages makes that a direct readout. The table reports mean
// wall time and wire traffic per stage over accepted batches at the paper's
// operating point; the benchmark kernels track the full-batch latency and
// export per-stage means as counters.
#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "bench/bench_util.hpp"
#include "src/qkd/engine.hpp"

namespace {

using namespace qkd::proto;

QkdLinkConfig operating_point(std::size_t frame_slots) {
  QkdLinkConfig config;
  config.frame_slots = frame_slots;
  return config;
}

void print_table() {
  qkd::bench::heading("E16",
                      "stage-latency decomposition of one distilled batch");
  QkdLinkSession session(operating_point(1 << 20), 2003);

  std::map<std::string, StageStats> acc;
  std::vector<std::string> order;
  std::size_t batches = 0;
  for (int i = 0; i < 6; ++i) {
    const BatchResult batch = session.run_batch();
    if (!batch.accepted) continue;
    ++batches;
    for (const StageStats& stage : batch.stages) {
      if (!acc.count(stage.name)) order.push_back(stage.name);
      StageStats& sum = acc[stage.name];
      sum.wall_s += stage.wall_s;
      sum.control_messages += stage.control_messages;
      sum.control_bytes += stage.control_bytes;
    }
  }
  qkd::bench::row("%-24s %12s %10s %12s", "stage", "mean wall us",
                  "msgs", "wire bytes");
  for (const std::string& name : order) {
    const StageStats& sum = acc[name];
    qkd::bench::row("%-24s %12.1f %10.1f %12.1f", name.c_str(),
                    1e6 * sum.wall_s / static_cast<double>(batches),
                    static_cast<double>(sum.control_messages) /
                        static_cast<double>(batches),
                    static_cast<double>(sum.control_bytes) /
                        static_cast<double>(batches));
  }
  qkd::bench::row("");
  qkd::bench::row("privacy amplification dominates wall time (GF(2^n) "
                  "products) with sifting second (RLE framing of a megaslot "
                  "detection map); the Cascade parity conversation dominates "
                  "message count, sharing the byte budget with sifting");
}

/// Full-batch latency with per-stage means exported as counters, so a
/// regression in any one stage is visible without re-deriving the split.
void bm_pipeline_stages(benchmark::State& state) {
  QkdLinkSession session(
      operating_point(static_cast<std::size_t>(state.range(0))), 17);
  std::map<std::string, double> stage_wall;
  std::size_t batches = 0;
  for (auto _ : state) {
    const BatchResult batch = session.run_batch();
    benchmark::DoNotOptimize(batch.distilled_bits);
    ++batches;
    for (const StageStats& stage : batch.stages)
      stage_wall[stage.name] += stage.wall_s;
  }
  for (const auto& [name, wall] : stage_wall) {
    std::string label("s_");
    label.append(name);
    state.counters[label] = wall / static_cast<double>(batches);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.range(0)) *
                          state.iterations());
}
BENCHMARK(bm_pipeline_stages)->Arg(1 << 18)->Arg(1 << 20);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
