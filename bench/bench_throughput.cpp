// E3b (Sec. 2): "Today's QKD systems achieve on the order of 1,000
// bits/second throughput for keying material, in realistic settings, and
// often run at much lower rates."
//
// Runs the complete pipeline at the 1 MHz operating trigger and at the
// hardware's 5 MHz maximum, reporting every stage's volume. The shape to
// check: hundreds of bits/s at 1 MHz, the ~1 kbps headline at 5 MHz.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/qkd/engine.hpp"

namespace {

using namespace qkd::proto;

void run_rate_row(double pulse_rate_hz, DefenseFunction defense,
                  const char* label) {
  QkdLinkConfig config;
  config.frame_slots = 1 << 20;
  config.link.pulse_rate_hz = pulse_rate_hz;
  config.defense = defense;
  QkdLinkSession session(config, 2003);
  std::size_t sifted = 0, errors = 0, disclosed = 0;
  for (int i = 0; i < 6; ++i) {
    const BatchResult batch = session.run_batch();
    sifted += batch.sifted_bits;
    errors += batch.errors_corrected;
    disclosed += batch.disclosed_bits;
  }
  const SessionTotals& totals = session.totals();
  qkd::bench::row("%10.1f %10s %10zu %10zu %10zu %12.0f", pulse_rate_hz / 1e6,
                  label, sifted, disclosed, totals.distilled_bits,
                  totals.distilled_rate_bps());
}

void print_table() {
  qkd::bench::heading(
      "E3b", "Sec. 2: end-to-end key throughput (bits/second distilled)");
  qkd::bench::row("%10s %10s %10s %10s %10s %12s", "MHz", "defense",
                  "sifted", "disclosed", "distilled", "bits/s");
  run_rate_row(1e6, DefenseFunction::kBennett, "Bennett");
  run_rate_row(1e6, DefenseFunction::kSlutsky, "Slutsky");
  run_rate_row(5e6, DefenseFunction::kBennett, "Bennett");
  run_rate_row(5e6, DefenseFunction::kSlutsky, "Slutsky");
  qkd::bench::row("");
  qkd::bench::row("paper: ~1,000 bit/s at the era's best; our 5 MHz/Bennett "
                  "row lands in that decade, 1 MHz runs \"much lower\" as "
                  "the paper says; Slutsky's conservative bound refuses to "
                  "distill at 6%% QBER (see E6)");
}

void bm_full_pipeline_batch(benchmark::State& state) {
  QkdLinkConfig config;
  config.frame_slots = static_cast<std::size_t>(state.range(0));
  QkdLinkSession session(config, 17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.run_batch());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(config.frame_slots) *
                          state.iterations());
}
BENCHMARK(bm_full_pipeline_batch)->Arg(1 << 18)->Arg(1 << 20);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
