// E19: the multi-tenant key management service.
//
// The ROADMAP's "millions of users" step: one KeyManagementService serving
// a thousand-client fleet over the relay mesh, entirely on scheduled
// deadlines. The headline table runs >= 1M get_key requests from >= 1k
// clients (three QoS classes, weighted fair share, same-destination
// batching) through one scheduled run and reports per-class grant counts,
// p99 grant latency, grants per wall second and the batching factor —
// the computational-load/rate coupling Gilbert & Hamrick analyze, measured
// on the living stack.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench/bench_util.hpp"
#include "src/common/worker_pool.hpp"
#include "src/kms/client_fleet.hpp"
#include "src/kms/kms.hpp"
#include "src/sim/scenario.hpp"
#include "src/sim/sharded_scheduler.hpp"

namespace {

using namespace qkd;
using namespace qkd::kms;
using namespace qkd::sim;
using network::MeshSimulation;
using network::NodeId;
using network::NodeKind;
using network::Topology;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One relay between two endpoints, with deliberately hot optics (short
/// fiber, multi-GHz trigger) so the link supplies — not the service — are
/// out of the way: E19 measures scheduling and delivery, not photons.
Topology hot_star() {
  Topology topo;
  topo.add_node("relay", NodeKind::kTrustedRelay);
  topo.add_node("a", NodeKind::kEndpoint);
  topo.add_node("b", NodeKind::kEndpoint);
  qkd::optics::LinkParams optics;
  optics.fiber_km = 1.0;
  optics.pulse_rate_hz = 5e9;
  topo.add_link(0, 1, optics);
  topo.add_link(0, 2, optics);
  return topo;
}

struct ClassLoad {
  QosClass qos;
  std::size_t clients;
  double rate_hz;
  std::size_t bits;
};

struct RunResult {
  std::uint64_t requests = 0;
  std::uint64_t clients = 0;
  KeyManagementService::Stats service;
  std::array<KeyManagementService::ClassStats, kQosClassCount> classes;
  std::array<double, kQosClassCount> p99_s{};
  std::array<double, kQosClassCount> mean_s{};
  double wall_s = 0.0;
  double sim_s = 0.0;
};

/// One scheduled run: the whole fleet arrives at t=1s and requests until
/// the horizon; the scenario engine owns the timeline end to end.
RunResult run_fleet(const std::vector<ClassLoad>& loads, double sim_seconds) {
  MeshSimulation mesh(hot_star(), 19);

  Scenario script;
  for (const ClassLoad& load : loads) {
    script.at(kSecond,
              ClientArrival{1, 2, static_cast<unsigned>(load.qos),
                            load.clients, load.rate_hz, load.bits});
  }
  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);

  KeyManagementService kms(mesh, runner.scheduler());
  KmsClientFleet fleet(kms, runner.scheduler());
  runner.attach_client_driver(fleet);

  const auto start = std::chrono::steady_clock::now();
  runner.run(seconds_to_sim(sim_seconds));
  RunResult result;
  result.wall_s = seconds_since(start);
  result.sim_s = runner.clock().seconds();
  result.requests = fleet.stats().requests_issued;
  result.clients = fleet.active_clients();
  result.service = kms.stats();
  for (std::size_t qos = 0; qos < kQosClassCount; ++qos) {
    result.classes[qos] = kms.class_stats(static_cast<QosClass>(qos));
    result.p99_s[qos] = kms.p99_grant_latency_s(static_cast<QosClass>(qos));
    result.mean_s[qos] = kms.mean_grant_latency_s(static_cast<QosClass>(qos));
  }
  return result;
}

/// A relay hub with `pairs` disjoint endpoint pairs fanned around it —
/// the sharded sweep's topology. Disjoint pairs spread across shards, so
/// the grant path parallelizes with no cross-shard traffic at all.
Topology hot_fan(std::size_t pairs) {
  Topology topo;
  topo.add_node("hub", NodeKind::kTrustedRelay);
  qkd::optics::LinkParams optics;
  optics.fiber_km = 1.0;
  optics.pulse_rate_hz = 5e9;
  for (std::size_t p = 0; p < 2 * pairs; ++p) {
    const NodeId node =
        topo.add_node("e" + std::to_string(p), NodeKind::kEndpoint);
    topo.add_link(0, node, optics);
  }
  return topo;
}

struct SweepResult {
  std::uint64_t grants = 0;
  double wall_s = 0.0;
  double sim_s = 0.0;
  /// Per-shard, per-class granted counts, for the DRR fairness columns.
  std::vector<std::array<std::uint64_t, kQosClassCount>> per_shard;
};

/// One epoch-mode run: `pairs` disjoint pairs, three QoS clients per pair
/// each requesting at 100 Hz, shards executing on min(shards, cores)
/// worker lanes. The per-client grant sequences are identical for every
/// shard count (that is the tier-1 contract); only the wall clock moves.
SweepResult run_sharded_fleet(std::size_t shards, std::size_t pairs,
                              double sim_seconds) {
  MeshSimulation mesh(hot_fan(pairs), 19);
  mesh.step(30.0);

  SimClock clock;
  EventScheduler scheduler(clock);
  auto pool = std::make_shared<qkd::common::WorkerPool>(
      std::min(shards, qkd::common::WorkerPool::default_lanes()));
  ShardedScheduler sharded(scheduler, shards, pool);
  KeyManagementService kms(mesh, sharded);

  // One counter slot per client: each client's grants arrive serially on
  // its own shard's lane, so distinct slots need no synchronization.
  std::vector<std::uint64_t> granted(3 * pairs, 0);
  const std::size_t bits[kQosClassCount] = {64, 96, 128};
  for (std::size_t p = 0; p < pairs; ++p) {
    const auto src = static_cast<NodeId>(1 + 2 * p);
    const auto dst = static_cast<NodeId>(2 + 2 * p);
    for (unsigned qos = 0; qos < kQosClassCount; ++qos) {
      const ClientId id = kms.register_client(
          {"c" + std::to_string(p) + "-" + std::to_string(qos), src, dst,
           static_cast<QosClass>(qos)});
      const std::size_t slot = 3 * p + qos;
      const std::size_t request_bits = bits[qos];
      kms.stream_for_pair(src, dst).every(
          (slot + 1) * (kMillisecond / 4), 10 * kMillisecond,
          [&kms, &granted, id, slot, request_bits](SimTime) {
            kms.get_key(id, request_bits,
                        [&granted, slot](const Grant& grant) {
                          if (grant.status == GrantStatus::kGranted)
                            ++granted[slot];
                        });
          });
    }
  }

  const auto start = std::chrono::steady_clock::now();
  sharded.run_until(seconds_to_sim(sim_seconds));
  SweepResult result;
  result.wall_s = seconds_since(start);
  result.sim_s = clock.seconds();
  for (std::uint64_t count : granted) result.grants += count;
  result.per_shard.resize(shards);
  for (std::size_t s = 0; s < shards; ++s)
    for (std::size_t qos = 0; qos < kQosClassCount; ++qos)
      result.per_shard[s][qos] =
          kms.shard_class_stats(s, static_cast<QosClass>(qos)).granted;
  return result;
}

const std::vector<ClassLoad>& headline_loads() {
  // 1000 clients, 10 req/s each, ~101 s: >= 1M requests in one run.
  static const std::vector<ClassLoad> loads = {
      {QosClass::kRealtime, 200, 10.0, 64},
      {QosClass::kInteractive, 300, 10.0, 96},
      {QosClass::kBulk, 500, 10.0, 128},
  };
  return loads;
}

void print_tables() {
  qkd::bench::heading("E19", "multi-tenant key management service");

  const RunResult run = run_fleet(headline_loads(), 102.0);
  std::uint64_t granted = 0;
  for (const auto& cls : run.classes) granted += cls.granted;

  qkd::bench::row("one scheduled run: %llu clients, %llu requests, %.0f "
                  "simulated seconds",
                  static_cast<unsigned long long>(run.clients),
                  static_cast<unsigned long long>(run.requests), run.sim_s);
  qkd::bench::row("");
  qkd::bench::row("%-12s %8s %10s %10s %10s %6s %9s %9s", "class", "clients",
                  "requests", "granted", "rejected", "shed", "p99 ms",
                  "mean ms");
  for (std::size_t qos = 0; qos < kQosClassCount; ++qos) {
    const auto& cls = run.classes[qos];
    qkd::bench::row("%-12s %8zu %10llu %10llu %10llu %6llu %9.2f %9.2f",
                    qos_class_name(static_cast<QosClass>(qos)),
                    headline_loads()[qos].clients,
                    static_cast<unsigned long long>(cls.requests),
                    static_cast<unsigned long long>(cls.granted),
                    static_cast<unsigned long long>(cls.rejected_queue_full),
                    static_cast<unsigned long long>(cls.shed),
                    1e3 * run.p99_s[qos], 1e3 * run.mean_s[qos]);
  }
  qkd::bench::row("");
  qkd::bench::row("  grants:          %llu  (%.0f grants/s wall)",
                  static_cast<unsigned long long>(granted),
                  static_cast<double>(granted) / run.wall_s);
  qkd::bench::row("  relay frames:    %llu  (%.1f grants/frame batching)",
                  static_cast<unsigned long long>(run.service.transports),
                  static_cast<double>(granted) /
                      static_cast<double>(run.service.transports));
  qkd::bench::row("  service rounds:  %llu  (starved %llu, sheds %llu)",
                  static_cast<unsigned long long>(run.service.service_rounds),
                  static_cast<unsigned long long>(run.service.starved_rounds),
                  static_cast<unsigned long long>(run.service.shed_events));
  qkd::bench::row("  wall: %.2f s, sim-s/wall-s: %.0f", run.wall_s,
                  run.sim_s / run.wall_s);

  // ---- The sharded sweep: grants/s against shard count ---------------------
  qkd::bench::row("");
  qkd::bench::row("sharded grant path: 32 disjoint pairs, 96 clients, "
                  "%zu worker lanes available",
                  qkd::common::WorkerPool::default_lanes());
  qkd::bench::row("%7s %10s %10s %9s %8s  %s", "shards", "grants",
                  "grants/s", "wall s", "speedup", "per-shard DRR min/max");
  double base_wall = 0.0;
  for (std::size_t shards : {1u, 2u, 4u, 8u}) {
    const SweepResult sweep = run_sharded_fleet(shards, 32, 5.0);
    if (shards == 1) base_wall = sweep.wall_s;
    // DRR fairness across OCCUPIED shards: min and max granted per class.
    std::array<std::uint64_t, kQosClassCount> lo{}, hi{};
    lo.fill(~std::uint64_t{0});
    for (const auto& per_class : sweep.per_shard) {
      std::uint64_t total = 0;
      for (std::uint64_t g : per_class) total += g;
      if (total == 0) continue;  // the hash left this shard empty
      for (std::size_t qos = 0; qos < kQosClassCount; ++qos) {
        lo[qos] = std::min(lo[qos], per_class[qos]);
        hi[qos] = std::max(hi[qos], per_class[qos]);
      }
    }
    qkd::bench::row(
        "%7zu %10llu %10.0f %9.2f %7.2fx  rt %llu/%llu ia %llu/%llu "
        "bulk %llu/%llu",
        shards, static_cast<unsigned long long>(sweep.grants),
        static_cast<double>(sweep.grants) / sweep.wall_s, sweep.wall_s,
        base_wall / sweep.wall_s, static_cast<unsigned long long>(lo[0]),
        static_cast<unsigned long long>(hi[0]),
        static_cast<unsigned long long>(lo[1]),
        static_cast<unsigned long long>(hi[1]),
        static_cast<unsigned long long>(lo[2]),
        static_cast<unsigned long long>(hi[2]));
  }
}

void bm_kms_fleet_run(benchmark::State& state) {
  // A scaled-down fleet day per iteration: `range(0)` clients per class,
  // 10 simulated seconds.
  const auto per_class = static_cast<std::size_t>(state.range(0));
  const std::vector<ClassLoad> loads = {
      {QosClass::kRealtime, per_class, 10.0, 64},
      {QosClass::kInteractive, per_class, 10.0, 96},
      {QosClass::kBulk, per_class, 10.0, 128},
  };
  std::uint64_t requests = 0;
  for (auto _ : state) {
    const RunResult run = run_fleet(loads, 10.0);
    requests += run.requests;
    benchmark::DoNotOptimize(run.requests);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
}
BENCHMARK(bm_kms_fleet_run)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void bm_kms_sharded_sweep(benchmark::State& state) {
  // The scaling sweep behind the E19 table: one epoch-mode fleet run at
  // `range(0)` shards. Items processed = keys granted, so items/s is
  // grants per wall second — compare across Args for the scaling curve
  // (tools/compare_bench.py --series bm_kms_sharded_sweep).
  const auto shards = static_cast<std::size_t>(state.range(0));
  std::uint64_t grants = 0;
  for (auto _ : state) {
    const SweepResult sweep = run_sharded_fleet(shards, 32, 5.0);
    grants += sweep.grants;
    benchmark::DoNotOptimize(sweep.grants);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(grants));
}
BENCHMARK(bm_kms_sharded_sweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void bm_kms_admission_rejection(benchmark::State& state) {
  // The backpressure fast path: get_key on a full queue must be cheap —
  // it is what protects the service when demand outruns supply.
  MeshSimulation mesh(hot_star(), 7);
  SimClock clock;
  EventScheduler scheduler(clock);
  KeyManagementService::Config config;
  config.max_queue_per_class = 8;
  KeyManagementService kms(mesh, scheduler, config);
  const ClientId client =
      kms.register_client({"bursty", 1, 2, QosClass::kBulk});
  for (std::size_t i = 0; i < config.max_queue_per_class; ++i)
    kms.get_key(client, 64, [](const Grant&) {});
  for (auto _ : state) {
    kms.get_key(client, 64, [](const Grant&) {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_kms_admission_rejection);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
