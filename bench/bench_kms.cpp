// E19: the multi-tenant key management service.
//
// The ROADMAP's "millions of users" step: one KeyManagementService serving
// a thousand-client fleet over the relay mesh, entirely on scheduled
// deadlines. The headline table runs >= 1M get_key requests from >= 1k
// clients (three QoS classes, weighted fair share, same-destination
// batching) through one scheduled run and reports per-class grant counts,
// p99 grant latency, grants per wall second and the batching factor —
// the computational-load/rate coupling Gilbert & Hamrick analyze, measured
// on the living stack.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/kms/client_fleet.hpp"
#include "src/kms/kms.hpp"
#include "src/sim/scenario.hpp"

namespace {

using namespace qkd;
using namespace qkd::kms;
using namespace qkd::sim;
using network::MeshSimulation;
using network::NodeId;
using network::NodeKind;
using network::Topology;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One relay between two endpoints, with deliberately hot optics (short
/// fiber, multi-GHz trigger) so the link supplies — not the service — are
/// out of the way: E19 measures scheduling and delivery, not photons.
Topology hot_star() {
  Topology topo;
  topo.add_node("relay", NodeKind::kTrustedRelay);
  topo.add_node("a", NodeKind::kEndpoint);
  topo.add_node("b", NodeKind::kEndpoint);
  qkd::optics::LinkParams optics;
  optics.fiber_km = 1.0;
  optics.pulse_rate_hz = 5e9;
  topo.add_link(0, 1, optics);
  topo.add_link(0, 2, optics);
  return topo;
}

struct ClassLoad {
  QosClass qos;
  std::size_t clients;
  double rate_hz;
  std::size_t bits;
};

struct RunResult {
  std::uint64_t requests = 0;
  std::uint64_t clients = 0;
  KeyManagementService::Stats service;
  std::array<KeyManagementService::ClassStats, kQosClassCount> classes;
  std::array<double, kQosClassCount> p99_s{};
  std::array<double, kQosClassCount> mean_s{};
  double wall_s = 0.0;
  double sim_s = 0.0;
};

/// One scheduled run: the whole fleet arrives at t=1s and requests until
/// the horizon; the scenario engine owns the timeline end to end.
RunResult run_fleet(const std::vector<ClassLoad>& loads, double sim_seconds) {
  MeshSimulation mesh(hot_star(), 19);

  Scenario script;
  for (const ClassLoad& load : loads) {
    script.at(kSecond,
              ClientArrival{1, 2, static_cast<unsigned>(load.qos),
                            load.clients, load.rate_hz, load.bits});
  }
  ScenarioRunner runner(std::move(script));
  runner.attach_mesh(mesh);

  KeyManagementService kms(mesh, runner.scheduler());
  KmsClientFleet fleet(kms, runner.scheduler());
  runner.attach_client_driver(fleet);

  const auto start = std::chrono::steady_clock::now();
  runner.run(seconds_to_sim(sim_seconds));
  RunResult result;
  result.wall_s = seconds_since(start);
  result.sim_s = runner.clock().seconds();
  result.requests = fleet.stats().requests_issued;
  result.clients = fleet.active_clients();
  result.service = kms.stats();
  for (std::size_t qos = 0; qos < kQosClassCount; ++qos) {
    result.classes[qos] = kms.class_stats(static_cast<QosClass>(qos));
    result.p99_s[qos] = kms.p99_grant_latency_s(static_cast<QosClass>(qos));
    result.mean_s[qos] = kms.mean_grant_latency_s(static_cast<QosClass>(qos));
  }
  return result;
}

const std::vector<ClassLoad>& headline_loads() {
  // 1000 clients, 10 req/s each, ~101 s: >= 1M requests in one run.
  static const std::vector<ClassLoad> loads = {
      {QosClass::kRealtime, 200, 10.0, 64},
      {QosClass::kInteractive, 300, 10.0, 96},
      {QosClass::kBulk, 500, 10.0, 128},
  };
  return loads;
}

void print_tables() {
  qkd::bench::heading("E19", "multi-tenant key management service");

  const RunResult run = run_fleet(headline_loads(), 102.0);
  std::uint64_t granted = 0;
  for (const auto& cls : run.classes) granted += cls.granted;

  qkd::bench::row("one scheduled run: %llu clients, %llu requests, %.0f "
                  "simulated seconds",
                  static_cast<unsigned long long>(run.clients),
                  static_cast<unsigned long long>(run.requests), run.sim_s);
  qkd::bench::row("");
  qkd::bench::row("%-12s %8s %10s %10s %10s %6s %9s %9s", "class", "clients",
                  "requests", "granted", "rejected", "shed", "p99 ms",
                  "mean ms");
  for (std::size_t qos = 0; qos < kQosClassCount; ++qos) {
    const auto& cls = run.classes[qos];
    qkd::bench::row("%-12s %8zu %10llu %10llu %10llu %6llu %9.2f %9.2f",
                    qos_class_name(static_cast<QosClass>(qos)),
                    headline_loads()[qos].clients,
                    static_cast<unsigned long long>(cls.requests),
                    static_cast<unsigned long long>(cls.granted),
                    static_cast<unsigned long long>(cls.rejected_queue_full),
                    static_cast<unsigned long long>(cls.shed),
                    1e3 * run.p99_s[qos], 1e3 * run.mean_s[qos]);
  }
  qkd::bench::row("");
  qkd::bench::row("  grants:          %llu  (%.0f grants/s wall)",
                  static_cast<unsigned long long>(granted),
                  static_cast<double>(granted) / run.wall_s);
  qkd::bench::row("  relay frames:    %llu  (%.1f grants/frame batching)",
                  static_cast<unsigned long long>(run.service.transports),
                  static_cast<double>(granted) /
                      static_cast<double>(run.service.transports));
  qkd::bench::row("  service rounds:  %llu  (starved %llu, sheds %llu)",
                  static_cast<unsigned long long>(run.service.service_rounds),
                  static_cast<unsigned long long>(run.service.starved_rounds),
                  static_cast<unsigned long long>(run.service.shed_events));
  qkd::bench::row("  wall: %.2f s, sim-s/wall-s: %.0f", run.wall_s,
                  run.sim_s / run.wall_s);
}

void bm_kms_fleet_run(benchmark::State& state) {
  // A scaled-down fleet day per iteration: `range(0)` clients per class,
  // 10 simulated seconds.
  const auto per_class = static_cast<std::size_t>(state.range(0));
  const std::vector<ClassLoad> loads = {
      {QosClass::kRealtime, per_class, 10.0, 64},
      {QosClass::kInteractive, per_class, 10.0, 96},
      {QosClass::kBulk, per_class, 10.0, 128},
  };
  std::uint64_t requests = 0;
  for (auto _ : state) {
    const RunResult run = run_fleet(loads, 10.0);
    requests += run.requests;
    benchmark::DoNotOptimize(run.requests);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(requests));
}
BENCHMARK(bm_kms_fleet_run)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void bm_kms_admission_rejection(benchmark::State& state) {
  // The backpressure fast path: get_key on a full queue must be cheap —
  // it is what protects the service when demand outruns supply.
  MeshSimulation mesh(hot_star(), 7);
  SimClock clock;
  EventScheduler scheduler(clock);
  KeyManagementService::Config config;
  config.max_queue_per_class = 8;
  KeyManagementService kms(mesh, scheduler, config);
  const ClientId client =
      kms.register_client({"bursty", 1, 2, QosClass::kBulk});
  for (std::size_t i = 0; i < config.max_queue_per_class; ++i)
    kms.get_key(client, 64, [](const Grant&) {});
  for (auto _ : state) {
    kms.get_key(client, 64, [](const Grant&) {});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_kms_admission_rejection);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
