// E18: the discrete-event scenario engine.
//
// Every future scale experiment (async multi-link meshes,
// millions-of-tunnels workloads) schedules onto the src/sim EventScheduler,
// so this experiment pins down the substrate's cost:
//
//  * Scheduler throughput — one-shot dispatch rate as the pending-event
//    population grows (heap depth), periodic-timer dispatch rate, and the
//    schedule+cancel round-trip rate (lazy-cancellation bookkeeping).
//  * End-to-end scenario cost — a scripted eavesdrop/cut/reroute/restore
//    network hour on an analytic-rate relay ring: events dispatched, wall
//    time, and the simulated-seconds-per-wall-second speedup.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "bench/bench_util.hpp"
#include "src/sim/scenario.hpp"

namespace {

using namespace qkd;
using namespace qkd::sim;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One-shot events/second: `population` events stay pending (each dispatch
/// schedules a replacement) while `fires` dispatches run.
double oneshot_events_per_s(std::size_t population, std::size_t fires) {
  SimClock clock;
  EventScheduler sched(clock);
  std::uint64_t fired = 0;
  std::function<void(SimTime)> refill = [&](SimTime t) {
    ++fired;
    sched.at(t + population * kMicrosecond, refill);
  };
  for (std::size_t i = 0; i < population; ++i)
    sched.at((i + 1) * kMicrosecond, refill);
  const auto start = std::chrono::steady_clock::now();
  while (fired < fires) sched.run_one();
  return static_cast<double>(fired) / seconds_since(start);
}

/// Periodic-timer dispatches/second with `timers` concurrent timers.
double periodic_events_per_s(std::size_t timers, std::size_t fires) {
  SimClock clock;
  EventScheduler sched(clock);
  std::uint64_t fired = 0;
  for (std::size_t i = 0; i < timers; ++i)
    sched.every((i + 1) * kMicrosecond, kMillisecond,
                [&fired](SimTime) { ++fired; });
  const auto start = std::chrono::steady_clock::now();
  while (fired < fires) sched.run_one();
  return static_cast<double>(fired) / seconds_since(start);
}

/// schedule+cancel round trips/second against `population` live events.
double cancel_round_trips_per_s(std::size_t population, std::size_t trips) {
  SimClock clock;
  EventScheduler sched(clock);
  for (std::size_t i = 0; i < population; ++i)
    sched.at((i + 1) * kSecond, [](SimTime) {});
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < trips; ++i) {
    const auto handle = sched.at(kSecond, [](SimTime) {});
    sched.cancel(handle);
  }
  return static_cast<double>(trips) / seconds_since(start);
}

struct ScenarioCost {
  std::size_t dispatched = 0;
  double wall_s = 0.0;
  double sim_s = 0.0;
};

/// The scenario_day shape: an hour of relay-ring operations with scripted
/// damage, repairs and five-minute key requests.
ScenarioCost scripted_hour(SimTime sample_interval) {
  network::MeshSimulation mesh(network::Topology::relay_ring(6), 18);
  Scenario script;
  for (SimTime t = 5 * kMinute; t < kHour; t += 5 * kMinute)
    script.at(t, KeyRequest{6, 7, 256});
  script.at(10 * kMinute, StartEavesdrop{1, 1.0});
  script.at(30 * kMinute, CutLink{4});
  script.at(38 * kMinute, StopEavesdrop{1});
  script.at(45 * kMinute, RestoreLink{4});
  ScenarioRunner::Config config;
  config.sample_interval = sample_interval;
  ScenarioRunner runner(std::move(script), config);
  runner.attach_mesh(mesh);
  const auto start = std::chrono::steady_clock::now();
  ScenarioCost cost;
  cost.dispatched = runner.run(kHour);
  cost.wall_s = seconds_since(start);
  cost.sim_s = runner.clock().seconds();
  return cost;
}

void print_tables() {
  qkd::bench::heading("E18", "discrete-event scenario engine");

  qkd::bench::row("%-42s %12s", "scheduler kernel", "events/s");
  for (const std::size_t population : {16u, 1024u, 65536u}) {
    char label[64];
    std::snprintf(label, sizeof(label), "  one-shot dispatch, %zu pending",
                  population);
    qkd::bench::row("%-42s %12.0f", label,
                    oneshot_events_per_s(population, 400000));
  }
  qkd::bench::row("%-42s %12.0f", "  periodic timers, 1024 concurrent",
                  periodic_events_per_s(1024, 400000));
  qkd::bench::row("%-42s %12.0f", "  schedule+cancel round trip",
                  cancel_round_trips_per_s(65536, 400000));

  qkd::bench::row("");
  qkd::bench::row("%-24s %10s %12s %14s", "scripted network hour", "events",
                  "wall ms", "sim-s/wall-s");
  for (const SimTime sample : {kMinute, kSecond}) {
    const ScenarioCost cost = scripted_hour(sample);
    qkd::bench::row("  sampling every %3llds %10zu %12.1f %14.0f",
                    static_cast<long long>(sample / kSecond), cost.dispatched,
                    1e3 * cost.wall_s, cost.sim_s / cost.wall_s);
  }
}

void bm_scheduler_oneshot(benchmark::State& state) {
  SimClock clock;
  EventScheduler sched(clock);
  const auto population = static_cast<std::size_t>(state.range(0));
  std::function<void(SimTime)> refill = [&](SimTime t) {
    sched.at(t + population * kMicrosecond, refill);
  };
  for (std::size_t i = 0; i < population; ++i)
    sched.at((i + 1) * kMicrosecond, refill);
  for (auto _ : state) sched.run_one();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_scheduler_oneshot)->Arg(16)->Arg(1024)->Arg(65536);

void bm_scripted_hour(benchmark::State& state) {
  for (auto _ : state) {
    const ScenarioCost cost = scripted_hour(kMinute);
    benchmark::DoNotOptimize(cost.dispatched);
  }
}
BENCHMARK(bm_scripted_hour)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
