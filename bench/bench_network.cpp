// E12/E13 (Sec. 8): the meshed QKD network.
//
// E12 — resilience: "a meshed QKD network is inherently far more robust than
// any single point-to-point link since it offers multiple paths for key
// distribution." Injects fiber cuts and eavesdropping into meshes of varying
// redundancy and measures end-to-end key delivery.
//
// E13 — topology cost: "QKD networks can greatly reduce the cost of
// large-scale interconnectivity ... by reducing the required (N x N-1)/2
// point-to-point links to as few as N links in the case of a simple star."
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/common/rng.hpp"
#include "src/network/key_transport.hpp"

namespace {

using namespace qkd::network;

/// Endpoints a and b joined through `relay_paths` disjoint two-hop relay
/// paths — redundancy dialed by construction.
Topology parallel_relays(std::size_t relay_paths) {
  Topology topo;
  const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
  const NodeId b = topo.add_node("b", NodeKind::kEndpoint);
  qkd::optics::LinkParams optics;
  optics.fiber_km = 10.0;
  for (std::size_t i = 0; i < relay_paths; ++i) {
    const NodeId r =
        topo.add_node("r" + std::to_string(i), NodeKind::kTrustedRelay);
    topo.add_link(a, r, optics);
    topo.add_link(r, b, optics);
  }
  return topo;
}

void print_resilience_table() {
  qkd::bench::heading("E12", "Sec. 8: mesh resilience under failures");
  qkd::bench::row("transporting 20 x 128-bit keys while links fail at "
                  "random:");
  qkd::bench::row("%14s %14s %12s %12s", "relay paths", "links failed",
                  "delivered", "reroutes");
  qkd::Rng rng(13);
  for (std::size_t paths : {1u, 2u, 3u, 4u}) {
    for (std::size_t failures : {0u, 1u, 2u, 3u}) {
      MeshSimulation mesh(parallel_relays(paths), 100 + failures);
      mesh.step(300.0);
      // Fail `failures` distinct random links.
      std::vector<LinkId> all_links;
      for (LinkId id = 0; id < mesh.topology().link_count(); ++id)
        all_links.push_back(id);
      for (std::size_t f = 0; f < failures && !all_links.empty(); ++f) {
        const std::size_t pick = rng.next_below(all_links.size());
        if (rng.next_bool(0.5))
          mesh.cut_link(all_links[pick]);
        else
          mesh.eavesdrop_link(all_links[pick], 1.0);
        all_links.erase(all_links.begin() + static_cast<std::ptrdiff_t>(pick));
      }
      std::size_t delivered = 0;
      for (int i = 0; i < 20; ++i)
        delivered += mesh.transport_key(0, 1, 128).success;
      qkd::bench::row("%14zu %14zu %9zu/20 %12lu", paths, failures, delivered,
                      static_cast<unsigned long>(mesh.stats().reroutes));
    }
  }
  qkd::bench::row("(one path dies with its first failure; 4 parallel paths "
                  "shrug off 3)");
}

void print_topology_cost_table() {
  qkd::bench::heading("E13", "Sec. 8: topology cost, full mesh vs. star");
  qkd::bench::row("%6s %18s %14s %22s", "N", "mesh links N(N-1)/2",
                  "star links", "star relay key rate*");
  for (std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
    const Topology mesh = Topology::full_mesh(n);
    const Topology star = Topology::star(n);
    // The hub relays every pairwise exchange: aggregate key-rate demand at
    // the hub is the sum of both link legs per transported bit.
    const double per_link = link_distill_rate_bps(star.link(0));
    qkd::bench::row("%6zu %18zu %14zu %18.0f b/s", n, mesh.link_count(),
                    star.link_count(), per_link * static_cast<double>(n) / 2.0);
  }
  qkd::bench::row("(*aggregate end-to-end capacity through the hub if every "
                  "endpoint pairs up: the star saves fiber but the hub's "
                  "links and trust become the bottleneck)");
}

void bm_mesh_step(benchmark::State& state) {
  MeshSimulation mesh(Topology::full_mesh(16), 3);
  for (auto _ : state) {
    mesh.step(1.0);
    benchmark::DoNotOptimize(mesh.link_pool_bits(0));
  }
}
BENCHMARK(bm_mesh_step);

void bm_transport_key(benchmark::State& state) {
  MeshSimulation mesh(Topology::relay_ring(8), 5);
  mesh.step(36000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh.transport_key(8, 9, 128));
  }
}
BENCHMARK(bm_transport_key);

}  // namespace

int main(int argc, char** argv) {
  print_resilience_table();
  print_topology_cost_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
