// E7 (Sec. 5): privacy amplification over GF(2^n) — "a linear hash function
// over the Galois Field GF[2^n] where n is the number of bits as input,
// rounded up to a multiple of 32".
//
// Regenerates the mechanics (four announced parameters, truncation to m
// bits, both sides agreeing) and times the field arithmetic across the
// width ladder.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/common/rng.hpp"
#include "src/qkd/privacy.hpp"

namespace {

using namespace qkd::proto;

void print_table() {
  qkd::bench::heading("E7", "Sec. 5: privacy amplification over GF(2^n)");
  qkd::bench::row("%10s %10s %10s %16s %18s", "input bits", "field n",
                  "out m", "params (bytes)", "sides agree?");
  qkd::Rng rng(1);
  qkd::crypto::Drbg drbg(1u);
  for (std::size_t input : {100u, 500u, 1500u, 3000u, 4000u}) {
    const std::size_t m = input * 2 / 3;
    const PaParams params = make_pa_params(input, m, drbg);
    const qkd::BitVector bits = rng.next_bits(input);
    const auto alice = privacy_amplify(bits, params);
    const auto bob = privacy_amplify(bits, params);
    qkd::bench::row("%10zu %10u %10u %16zu %18s", input, params.n, params.m,
                    params.serialize().size(),
                    alice == bob ? "yes" : "NO (BUG)");
  }
  qkd::bench::row("");
  qkd::bench::row("the announced modulus is sparse (<=5 terms), e.g. n=1536:");
  const auto poly = qkd::crypto::irreducible_poly(1536);
  std::string terms;
  for (unsigned e : poly.exponents) terms += " x^" + std::to_string(e);
  qkd::bench::row(" %s", terms.c_str());
}

void bm_privacy_amplify(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  qkd::Rng rng(7);
  qkd::crypto::Drbg drbg(7u);
  const PaParams params = make_pa_params(n, n / 2, drbg);
  const qkd::BitVector input = rng.next_bits(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(privacy_amplify(input, params));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(bm_privacy_amplify)->Arg(512)->Arg(1024)->Arg(2048)->Arg(4096);

void bm_gf2_multiply(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const qkd::crypto::Gf2Field field(n);
  qkd::Rng rng(9);
  const auto a = rng.next_bits(n);
  const auto b = rng.next_bits(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(field.multiply(a, b));
  }
}
BENCHMARK(bm_gf2_multiply)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
