// E1 (Figs. 4-7): interferometric signalling.
//
// Reproduces the click-probability law of Fig. 7 — constructive /
// destructive interference for compatible bases, 50/50 for incompatible —
// by comparing the analytic law against Monte-Carlo click fractions for all
// eight (Alice phase, Bob basis) settings, plus a visibility sweep showing
// the (1-V)/2 error floor.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/optics/interference.hpp"
#include "src/optics/link.hpp"

namespace {

using namespace qkd::optics;

void print_table() {
  qkd::bench::heading("E1", "Fig. 7: click probabilities vs. phase setting");

  // Monte-Carlo at high efficiency so every slot yields statistics quickly.
  LinkParams params;
  params.mean_photon_number = 5.0;  // bright: isolate the interference law
  params.fiber_km = 0.0;
  params.insertion_loss_db = 0.0;
  params.detector_efficiency = 1.0;
  params.central_peak_fraction = 1.0;
  params.dark_count_prob = 0.0;
  params.interferometer_visibility = 1.0;

  qkd::bench::row("%8s %8s %10s %12s %12s  %s", "aliceQ", "bobQ", "delta",
                  "P(D1) law", "P(D1) MC", "interpretation");
  WeakCoherentLink link(params, 99);
  const FrameResult frame = link.run_frame(400000);
  for (unsigned alice_q = 0; alice_q < 4; ++alice_q) {
    for (unsigned bob_q = 0; bob_q < 2; ++bob_q) {
      const double law = p_route_to_d1(alice_q, bob_q, 1.0);
      // Harvest MC fraction for the matching modulator settings.
      std::size_t d1 = 0, total = 0;
      for (std::size_t slot = 0; slot < frame.bob.size(); ++slot) {
        if (!frame.bob.detected.get(slot)) continue;
        const unsigned aq = alice_phase_quarter(
            basis_from_bit(frame.alice.bases.get(slot)),
            frame.alice.values.get(slot));
        const unsigned bq = bob_phase_quarter(
            basis_from_bit(frame.bob.bases.get(slot)));
        if (aq != alice_q || bq != bob_q) continue;
        ++total;
        d1 += frame.bob.bits.get(slot);
      }
      const double mc = total ? static_cast<double>(d1) / total : 0.0;
      const unsigned delta = (alice_q + 4 - bob_q) % 4;
      const char* meaning =
          delta == 0 ? "constructive at D0 (bit 0)"
          : delta == 2 ? "constructive at D1 (bit 1)"
                       : "incompatible bases: random APD";
      qkd::bench::row("%8u %8u %7u*pi/2 %12.3f %12.3f  %s", alice_q, bob_q,
                      delta, law, mc, meaning);
    }
  }

  qkd::bench::row("");
  qkd::bench::row("visibility sweep (compatible bases): error floor = (1-V)/2");
  qkd::bench::row("(single-photon regime, mu = 0.1: with bright pulses the"
                  " double-click discard would mask the errors)");
  qkd::bench::row("%12s %14s %14s", "visibility", "wrong-APD law",
                  "QBER floor MC");
  for (double v : {1.0, 0.98, 0.95, 0.90, 0.885, 0.80}) {
    LinkParams vis = params;
    vis.mean_photon_number = 0.1;
    vis.interferometer_visibility = v;
    WeakCoherentLink vlink(vis, 7);
    const FrameResult vframe = vlink.run_frame(1000000);
    std::size_t errors = 0, sifted = 0;
    for (std::size_t slot = 0; slot < vframe.bob.size(); ++slot) {
      if (!vframe.bob.detected.get(slot)) continue;
      if (vframe.alice.bases.get(slot) != vframe.bob.bases.get(slot)) continue;
      ++sifted;
      errors += vframe.alice.values.get(slot) != vframe.bob.bits.get(slot);
    }
    qkd::bench::row("%12.3f %14.4f %14.4f", v, (1.0 - v) / 2.0,
                    sifted ? static_cast<double>(errors) / sifted : 0.0);
  }
}

void bm_frame_simulation(benchmark::State& state) {
  LinkParams params;  // paper operating point
  WeakCoherentLink link(params, 1);
  const std::size_t slots = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(link.run_frame(slots));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(slots) *
                          state.iterations());
}
BENCHMARK(bm_frame_simulation)->Arg(1 << 16)->Arg(1 << 20);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
