// E5 (Sec. 5): "The protocol is adaptive, in that it will not disclose too
// many bits if the number of errors is low, but it will accurately detect
// and correct a large number of errors (up to some limit) even if that
// number is well above the historical average."
//
// The error-correction ablation: the paper's BBN LFSR-subset variant vs.
// classic Brassard-Salvail Cascade vs. the conventional parity baseline.
// Measures disclosure (the d that privacy amplification must burn),
// residual errors, and convergence across a QBER sweep — including the
// reproduction's headline negative result: the BBN variant's disclosure per
// error (~log2 n) dwarfs classic Cascade's at block sizes the paper's link
// actually produced.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/common/rng.hpp"
#include "src/qkd/cascade_bbn.hpp"
#include "src/qkd/cascade_classic.hpp"
#include "src/qkd/parity_ec.hpp"

namespace {

using namespace qkd::proto;

struct TrialResult {
  std::size_t disclosed;
  std::size_t corrections;
  std::size_t residual;
  bool converged;
};

struct Corrupted {
  qkd::BitVector alice;
  qkd::BitVector bob;
};

Corrupted make_corrupted(std::size_t n, double rate, std::uint64_t seed) {
  qkd::Rng rng(seed);
  Corrupted c;
  c.alice = rng.next_bits(n);
  c.bob = c.alice;
  for (std::size_t i = 0; i < n; ++i)
    if (rng.next_bool(rate)) c.bob.flip(i);
  return c;
}

template <typename CorrectFn>
TrialResult run_trial(std::size_t n, double rate, std::uint64_t seed,
                      CorrectFn&& correct) {
  Corrupted c = make_corrupted(n, rate, seed);
  LocalParityOracle oracle(c.alice);
  const EcStats stats = correct(c.bob, oracle, rate);
  return TrialResult{oracle.disclosed(), stats.corrections,
                     c.alice.hamming_distance(c.bob), stats.converged};
}

void print_table() {
  qkd::bench::heading(
      "E5", "Sec. 5: error-correction disclosure / residual ablation");
  const std::size_t n = 4096;
  qkd::bench::row("block = %zu bits; Shannon bound = n*h2(q)", n);
  qkd::bench::row("%7s | %9s %9s %5s | %9s %9s %5s | %9s %9s %5s", "QBER%",
                  "bbn:d", "resid", "conv", "classic:d", "resid", "conv",
                  "naive:d", "resid", "conv");
  for (double rate : {0.005, 0.01, 0.03, 0.05, 0.07, 0.09, 0.11}) {
    const auto bbn = run_trial(n, rate, 1000,
                               [](auto& bob, auto& oracle, double) {
                                 return bbn_cascade_correct(bob, oracle);
                               });
    const auto classic =
        run_trial(n, rate, 1000, [](auto& bob, auto& oracle, double q) {
          return classic_cascade_correct(bob, oracle, std::max(q, 0.01));
        });
    const auto naive = run_trial(n, rate, 1000,
                                 [](auto& bob, auto& oracle, double) {
                                   return naive_parity_correct(bob, oracle);
                                 });
    qkd::bench::row(
        "%7.1f | %9zu %9zu %5s | %9zu %9zu %5s | %9zu %9zu %5s", 100.0 * rate,
        bbn.disclosed, bbn.residual, bbn.converged ? "yes" : "NO",
        classic.disclosed, classic.residual, classic.converged ? "yes" : "NO",
        naive.disclosed, naive.residual, naive.converged ? "yes" : "NO");
  }
  qkd::bench::row("");
  qkd::bench::row("adaptivity check (the paper's claim): zero-error blocks");
  for (std::size_t clean_n : {1024u, 4096u, 16384u}) {
    const auto bbn = run_trial(clean_n, 0.0, 7,
                               [](auto& bob, auto& oracle, double) {
                                 return bbn_cascade_correct(bob, oracle);
                               });
    qkd::bench::row("  n=%6zu: BBN variant disclosed %zu bits "
                    "(= one round of 64 subset parities)",
                    clean_n, bbn.disclosed);
  }
}

void bm_bbn_cascade(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const double rate = 0.06;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Corrupted c = make_corrupted(n, rate, seed++);
    LocalParityOracle oracle(c.alice);
    benchmark::DoNotOptimize(bbn_cascade_correct(c.bob, oracle));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(bm_bbn_cascade)->Arg(1024)->Arg(4096);

void bm_classic_cascade(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const double rate = 0.06;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Corrupted c = make_corrupted(n, rate, seed++);
    LocalParityOracle oracle(c.alice);
    benchmark::DoNotOptimize(classic_cascade_correct(c.bob, oracle, rate));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) * state.iterations());
}
BENCHMARK(bm_classic_cascade)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
