// Shared helpers for the benchmark binaries.
//
// Every bench binary regenerates one of the paper's quantitative tables or
// figure series (see DESIGN.md's per-experiment index) by printing the table
// before handing control to google-benchmark for the timing kernels:
//
//   $ ./bench_<experiment>            # table + microbenchmarks
//   $ ./bench_<experiment> --benchmark_filter=none   # table only
#pragma once

#include <cstdarg>
#include <cstdio>

namespace qkd::bench {

inline void heading(const char* experiment_id, const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment_id, title);
  std::printf("================================================================\n");
}

inline void row(const char* format, ...) {
  va_list args;
  va_start(args, format);
  std::vprintf(format, args);
  va_end(args);
  std::printf("\n");
}

}  // namespace qkd::bench
