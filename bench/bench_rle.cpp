// E9 (Appendix, "Sifting / Run-Length Encoding"): "Encode the sifting
// messages ... so that runs of identical values (and in particular of 'no
// detection' values) are compressed to take very little space."
//
// Measures encoded sift-message size against the raw bitmap across
// detection probabilities — at the paper's ~0.3% detection probability the
// encoding wins by ~25x.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/common/rng.hpp"
#include "src/qkd/rle.hpp"

namespace {

using namespace qkd::proto;

qkd::BitVector detection_bitmap(std::size_t slots, double p_detect,
                                std::uint64_t seed) {
  qkd::Rng rng(seed);
  qkd::BitVector bits(slots);
  for (std::size_t i = 0; i < slots; ++i)
    if (rng.next_bool(p_detect)) bits.set(i, true);
  return bits;
}

void print_table() {
  qkd::bench::heading("E9", "Appendix: run-length encoding of sift messages");
  const std::size_t slots = 1 << 20;
  qkd::bench::row("frame: %zu slots (1 s at the 1 MHz trigger)", slots);
  qkd::bench::row("%12s %14s %14s %10s", "P(detect)", "raw (bytes)",
                  "RLE (bytes)", "ratio");
  for (double p : {0.0005, 0.003, 0.01, 0.05, 0.25, 0.5}) {
    const auto bits = detection_bitmap(slots, p, 17);
    const std::size_t raw = raw_bitmap_bytes(slots);
    const std::size_t rle = rle_encode(bits).size();
    qkd::bench::row("%12.4f %14zu %14zu %9.1fx", p, raw, rle,
                    static_cast<double>(raw) / static_cast<double>(rle));
  }
  qkd::bench::row("(0.003 is the paper link's detection probability: runs of"
                  " 'no detection' dominate, as the Appendix predicts)");
}

void bm_rle_encode(benchmark::State& state) {
  const auto bits = detection_bitmap(1 << 20, 0.003, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rle_encode(bits));
  }
  state.SetItemsProcessed((1 << 20) * state.iterations());
}
BENCHMARK(bm_rle_encode);

void bm_rle_decode(benchmark::State& state) {
  const auto encoded = rle_encode(detection_bitmap(1 << 20, 0.003, 3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rle_decode(encoded));
  }
  state.SetItemsProcessed((1 << 20) * state.iterations());
}
BENCHMARK(bm_rle_decode);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
