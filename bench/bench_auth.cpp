// E15 (Sec. 5, Appendix): Wegman-Carter authentication economics.
//
// "The drawback is that the secret key bits cannot be re-used even once on
// different data without compromising the security. Fortunately, a complete
// authenticated conversation can validate a large number of new, shared
// secret bits from QKD, and a small number of these may be used to
// replenish the pool." Measures pad consumption against replenishment and
// the forgery rejection rate, plus the exhaustion DoS.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.hpp"
#include "src/common/rng.hpp"
#include "src/qkd/authentication.hpp"

namespace {

using namespace qkd::proto;
using qkd::Bytes;
using qkd::put_u64;

void print_table() {
  qkd::bench::heading("E15", "Sec. 5: authentication pad economics");

  qkd::bench::row("pad cost per authenticated control message (tag bits):");
  qkd::bench::row("%10s %16s %22s", "tag bits", "forgery prob",
                  "msgs per 1024-bit Qblock");
  for (unsigned tag_bits : {32u, 64u, 96u}) {
    qkd::bench::row("%10u %16.2e %22.0f", tag_bits,
                    std::pow(2.0, -static_cast<double>(tag_bits)),
                    1024.0 / tag_bits);
  }

  qkd::bench::row("");
  qkd::bench::row("sustainability: a batch's control traffic costs ~7 tags; "
                  "with 32-bit tags that is 224 pad bits against a 192-bit "
                  "replenishment plus the prepositioned reserve");

  // Exhaustion DoS: force tags until the pool dies.
  AuthenticationService::Config config;
  config.tag_bits = 64;
  qkd::Rng rng(5);
  const auto secret = rng.next_bits(
      AuthenticationService::required_secret_bits(config) + 64 * 64);
  AuthenticationService auth(config, secret, true);
  std::size_t tags_until_exhaustion = 0;
  while (auth.protect(Bytes{1, 2, 3}).has_value()) ++tags_until_exhaustion;
  qkd::bench::row("");
  qkd::bench::row("exhaustion DoS: %zu tags issued before the pool died "
                  "(then: %zu stalls, needs_replenishment=%s)",
                  tags_until_exhaustion, auth.stats().stalls,
                  auth.needs_replenishment() ? "true" : "false");

  // Forgery rejection.
  qkd::Rng forgery_rng(7);
  AuthenticationService::Config small;
  small.tag_bits = 16;  // measurable forgery probability
  int accepted = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const auto fresh_secret = forgery_rng.next_bits(
        AuthenticationService::required_secret_bits(small) + 256);
    AuthenticationService victim(small, fresh_secret, false);
    Bytes forged;
    put_u64(forged, 0);               // guessed sequence number
    forged.push_back(0x42);           // payload
    for (int b = 0; b < 2; ++b)       // guessed 16-bit tag
      forged.push_back(static_cast<std::uint8_t>(forgery_rng.next_u64()));
    accepted += victim.verify(forged).has_value();
  }
  qkd::bench::row("");
  qkd::bench::row("forgery acceptance with 16-bit tags: %d / %d "
                  "(theory: %.1f expected)",
                  accepted, trials, trials / 65536.0);
}

void bm_protect_verify(benchmark::State& state) {
  AuthenticationService::Config config;
  config.tag_bits = 64;
  qkd::Rng rng(11);
  const auto secret = rng.next_bits(
      AuthenticationService::required_secret_bits(config) + (1 << 22));
  AuthenticationService alice(config, secret, true);
  AuthenticationService bob(config, secret, false);
  const Bytes message(256, 0x5a);
  for (auto _ : state) {
    const auto framed = alice.protect(message);
    benchmark::DoNotOptimize(bob.verify(*framed));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_protect_verify);

void bm_toeplitz_hash(benchmark::State& state) {
  qkd::Rng rng(13);
  const std::size_t msg_bits = static_cast<std::size_t>(state.range(0));
  const auto key = rng.next_bits(64 + msg_bits - 1);
  const auto message = rng.next_bits(msg_bits);
  for (auto _ : state) {
    benchmark::DoNotOptimize(qkd::crypto::toeplitz_hash(key, message, 64));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(msg_bits / 8) *
                          state.iterations());
}
BENCHMARK(bm_toeplitz_hash)->Arg(1 << 10)->Arg(1 << 15);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
