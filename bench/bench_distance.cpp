// E4 (Sec. 1): "The best current systems can support distances up to about
// 70 km through fiber, though at very low bit-rates."
//
// Sweeps fiber length: sifted and distilled rates decay exponentially with
// loss until dark counts dominate the QBER and the key rate collapses. The
// crossover (QBER = 11%) must land near 70 km with the default calibration.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/network/key_transport.hpp"
#include "src/optics/link_model.hpp"

namespace {

using namespace qkd::optics;

void print_table() {
  qkd::bench::heading("E4",
                      "Sec. 1: key rate vs. fiber distance (collapse ~70 km)");
  qkd::bench::row("%8s %10s %14s %16s %12s", "km", "QBER%", "sifted b/s",
                  "distilled b/s", "status");
  for (double km : {0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 65.0, 70.0,
                    75.0, 80.0, 90.0}) {
    LinkParams params;
    params.fiber_km = km;
    const LinkModel model(params);
    const double qber = model.expected_qber();
    const double fraction =
        qkd::network::estimated_distill_fraction(model);
    qkd::bench::row("%8.0f %10.2f %14.1f %16.2f %12s", km, 100.0 * qber,
                    model.sifted_rate_bps(),
                    model.sifted_rate_bps() * fraction,
                    qber < 0.11 ? "up" : "QBER alarm");
  }
  LinkParams params;
  const LinkModel model(params);
  qkd::bench::row("");
  qkd::bench::row("maximum range at the default calibration: %.1f km "
                  "(paper: \"up to about 70 km\")",
                  model.max_range_km());
}

void bm_max_range_solver(benchmark::State& state) {
  const LinkParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LinkModel(params).max_range_km());
  }
}
BENCHMARK(bm_max_range_solver);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
