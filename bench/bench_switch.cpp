// E14 (Sec. 8): untrusted photonic switches.
//
// "Unlike trusted relays, untrusted switches cannot extend the geographic
// reach of a QKD network. In fact, they may significantly reduce it since
// each switch adds at least a fractional dB insertion loss along the
// photonic path." Sweeps path length and per-switch insertion loss; the
// trusted-relay row shows the contrast.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.hpp"
#include "src/network/key_transport.hpp"
#include "src/network/switch_network.hpp"

namespace {

using namespace qkd::network;

Topology switch_chain(std::size_t switches, double span_km) {
  Topology topo;
  const NodeId a = topo.add_node("alice", NodeKind::kEndpoint);
  qkd::optics::LinkParams optics;
  optics.fiber_km = span_km;
  NodeId prev = a;
  for (std::size_t i = 0; i < switches; ++i) {
    const NodeId s =
        topo.add_node("sw" + std::to_string(i), NodeKind::kUntrustedSwitch);
    topo.add_link(prev, s, optics);
    prev = s;
  }
  topo.add_link(prev, topo.add_node("bob", NodeKind::kEndpoint), optics);
  return topo;
}

void print_table() {
  qkd::bench::heading("E14", "Sec. 8: switch insertion loss vs. reach");
  qkd::bench::row("10 km spans; end-to-end key rate (bit/s):");
  qkd::bench::row("%10s %12s | %12s %12s %12s", "switches", "fiber (km)",
                  "0.5 dB/sw", "1.0 dB/sw", "2.0 dB/sw");
  for (std::size_t switches : {0u, 1u, 2u, 3u, 4u, 6u}) {
    const Topology topo = switch_chain(switches, 10.0);
    const NodeId bob = static_cast<NodeId>(switches + 1);
    double rates[3] = {0, 0, 0};
    const double losses[3] = {0.5, 1.0, 2.0};
    for (int i = 0; i < 3; ++i) {
      const auto budget = best_switch_path(topo, 0, bob, losses[i]);
      rates[i] = budget.has_value() ? budget->distilled_rate_bps : 0.0;
    }
    qkd::bench::row("%10zu %12.0f | %12.1f %12.1f %12.1f", switches,
                    10.0 * (switches + 1), rates[0], rates[1], rates[2]);
  }

  qkd::bench::row("");
  qkd::bench::row("contrast: trusted relays EXTEND reach (same 10 km spans):");
  qkd::bench::row("%10s %12s %18s", "relays", "fiber (km)",
                  "end-to-end key b/s");
  for (std::size_t relays : {0u, 2u, 4u, 6u}) {
    // Hop-by-hop: each span is an independent 10 km link; the end-to-end
    // rate is the minimum span rate (every hop consumes the same bits).
    Topology topo;
    const NodeId a = topo.add_node("a", NodeKind::kEndpoint);
    qkd::optics::LinkParams optics;
    optics.fiber_km = 10.0;
    NodeId prev = a;
    for (std::size_t i = 0; i < relays; ++i) {
      const NodeId r =
          topo.add_node("r" + std::to_string(i), NodeKind::kTrustedRelay);
      topo.add_link(prev, r, optics);
      prev = r;
    }
    topo.add_link(prev, topo.add_node("b", NodeKind::kEndpoint), optics);
    double min_rate = 1e18;
    for (const Link& link : topo.links())
      min_rate = std::min(min_rate, link_distill_rate_bps(link));
    qkd::bench::row("%10zu %12.0f %18.1f", relays, 10.0 * (relays + 1),
                    min_rate);
  }
  qkd::bench::row("(70 km through switches: dead. 70 km through relays: full "
                  "per-span rate, paid for with trust.)");
}

void bm_switch_path_budget(benchmark::State& state) {
  const Topology topo = switch_chain(4, 10.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(best_switch_path(topo, 0, 5, 1.0));
  }
}
BENCHMARK(bm_switch_path_budget);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
