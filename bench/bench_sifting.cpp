// E3a (Sec. 5 worked example): "assume that 1% of the photons that Alice
// tries to transmit are actually received at Bob ... On average, Alice and
// Bob will happen to agree on a basis 50% of the time ... Thus only 50% x 1%
// of Alice's photons give rise to a sifted bit, i.e., 1 photon in 200. A
// transmitted stream of 1,000 bits therefore would boil down to about 5
// sifted bits."
//
// Regenerates the sift-ratio table across detection probabilities and
// validates the protocol messages' sizes.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench/bench_util.hpp"
#include "src/optics/link.hpp"
#include "src/qkd/sifting.hpp"

namespace {

using namespace qkd::optics;
using namespace qkd::proto;

/// Tunes detector efficiency so P(single click) ~ target.
LinkParams params_for_detection_prob(double target) {
  LinkParams params;
  params.dark_count_prob = 0.0;
  params.interferometer_visibility = 1.0;
  params.fiber_km = 0.0;
  params.insertion_loss_db = 0.0;
  params.central_peak_fraction = 0.5;
  // P(click) ~ 1 - exp(-mu * 0.5 * eta); solve for eta.
  params.detector_efficiency =
      std::min(1.0, -std::log(1.0 - target) / (params.mean_photon_number * 0.5));
  return params;
}

void print_table() {
  qkd::bench::heading("E3a", "Sec. 5: sifting boil-down (1 photon in 200)");
  qkd::bench::row("%12s %12s %14s %14s %18s", "P(detect)", "pulses",
                  "detections", "sifted bits", "sifted per 1000");
  for (double p_detect : {0.001, 0.005, 0.01, 0.02}) {
    const LinkParams params = params_for_detection_prob(p_detect);
    WeakCoherentLink link(params, 5);
    const std::size_t pulses = 1000000;
    const FrameResult frame = link.run_frame(pulses);
    const SiftMessage msg = make_sift_message(0, frame.bob);
    const AliceSiftResult sift = alice_sift(frame.alice, msg);
    qkd::bench::row("%12.3f %12zu %14zu %14zu %18.2f", p_detect, pulses,
                    frame.bob.detected.popcount(), sift.outcome.bits.size(),
                    1000.0 * static_cast<double>(sift.outcome.bits.size()) /
                        pulses);
  }
  qkd::bench::row("");
  qkd::bench::row("paper's example row: P(detect)=0.01 -> ~5 sifted per"
                  " 1,000 transmitted (1 in 200)");

  qkd::bench::row("");
  qkd::bench::row("sift exchange wire cost at the real operating point:");
  const LinkParams op;  // defaults
  WeakCoherentLink link(op, 9);
  const FrameResult frame = link.run_frame(1 << 20);
  const SiftMessage msg = make_sift_message(0, frame.bob);
  const AliceSiftResult sift = alice_sift(frame.alice, msg);
  qkd::bench::row("  SIFT message: %zu bytes for %zu slots (%zu detections)",
                  msg.serialize().size(), frame.bob.size(),
                  frame.bob.detected.popcount());
  qkd::bench::row("  SIFT RESPONSE: %zu bytes; sifted bits: %zu",
                  sift.response.serialize().size(), sift.outcome.bits.size());
}

void bm_sift_round(benchmark::State& state) {
  const LinkParams params;
  WeakCoherentLink link(params, 13);
  const FrameResult frame = link.run_frame(1 << 18);
  for (auto _ : state) {
    const SiftMessage msg = make_sift_message(0, frame.bob);
    const AliceSiftResult alice = alice_sift(frame.alice, msg);
    benchmark::DoNotOptimize(
        bob_apply_response(frame.bob, msg, alice.response));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(frame.bob.size()) *
                          state.iterations());
}
BENCHMARK(bm_sift_round);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
