// E20: the wire layer — framing codec and socket transport.
//
// The message-framing layer under Alice/Bob and the KMS: typed protocol
// packets behind an 8-byte versioned frame header. The table prints the
// encoded size of one representative instance of every packet type (the
// per-message wire cost the control-traffic accounting charges); the
// timing kernels measure codec throughput on the three size regimes that
// matter — header-dominated control packets, the sparse sift announcement,
// and the bulk Qframe feed — plus one-frame round-trip latency over the
// in-memory channel and a real localhost TCP socket, which move identical
// bytes by construction.
#include <benchmark/benchmark.h>

#include <cinttypes>
#include <thread>

#include "bench/bench_util.hpp"
#include "src/common/rng.hpp"
#include "src/net/channel_transport.hpp"
#include "src/wire/etsi.hpp"
#include "src/wire/packets.hpp"
#include "src/wire/transport.hpp"

namespace {

using namespace qkd;
using namespace qkd::wire;

/// One plausible instance of each packet type, sized like the live
/// protocol sizes them (20-byte digests, ~1500-bit corrected strings,
/// 0.15 % detection density on a 2^20-slot Qframe).
template <typename Packet>
Packet representative();

template <> QframeFeed representative() {
  Rng rng(20);
  QframeFeed p;
  p.frame_id = 7;
  p.detected = rng.next_bits(1 << 20);
  p.bases = rng.next_bits(1 << 20);
  p.bits = rng.next_bits(1 << 20);
  return p;
}
template <> SiftAnnounce representative() {
  Rng rng(21);
  SiftAnnounce p;
  p.frame_id = 7;
  p.detected = BitVector(1 << 20);
  for (std::size_t i = 0; i < p.detected.size(); i += 683)
    p.detected.set(i, true);  // ~0.15 % click density
  p.bob_bases = rng.next_bits(p.detected.popcount());
  return p;
}
template <> SiftDecision representative() {
  Rng rng(22);
  SiftDecision p;
  p.frame_id = 7;
  p.keep = rng.next_bits(1535);
  return p;
}
template <> SampleReveal representative() {
  Rng rng(23);
  SampleReveal p;
  p.frame_id = 7;
  p.bits = rng.next_bits(76);
  return p;
}
template <> ParityRequest representative() {
  ParityRequest p;
  p.kind = 1;
  p.seed = 0xDEADBEEF;
  p.begin = 0;
  p.end = 1459;
  return p;
}
template <> ParityResponse representative() { return ParityResponse{true}; }
template <> EcSummary representative() { return EcSummary{19, true}; }
template <> VerifyHash representative() {
  VerifyHash p;
  p.frame_id = 7;
  p.digest.assign(20, 0xAB);
  return p;
}
template <> PaParamsPacket representative() {
  Rng rng(24);
  PaParamsPacket p;
  p.n = 1459;
  p.m = 1100;
  p.modulus_exponents = {1459, 54, 0};
  p.multiplier = rng.next_bits(p.n);
  p.addend = rng.next_bits(p.m);
  return p;
}
template <> AbortPacket representative() { return AbortPacket{2}; }
template <> KeyDigest representative() {
  KeyDigest p;
  p.frame_id = 7;
  p.key_bits = 908;
  p.digest.assign(20, 0x5C);
  return p;
}
template <> KmsRegister representative() {
  KmsRegister m;
  m.name = "vpn-gw-7 (interactive)";
  m.src = 1;
  m.dst = 2;
  m.qos = 1;
  return m;
}
template <> KmsRegisterReply representative() { return KmsRegisterReply{17}; }
template <> KmsGetKey representative() {
  KmsGetKey m;
  m.client_id = 17;
  m.request_id = 901;
  m.bits = 256;
  return m;
}
template <> KmsGetKeyWithId representative() {
  KmsGetKeyWithId m;
  m.client_id = 18;
  m.request_id = 902;
  m.key_id = 0xFEEDF00DCAFEULL;
  return m;
}
template <> KmsStatus representative() { return KmsStatus{17}; }
template <> KmsBye representative() { return KmsBye{}; }
template <> KmsGrant representative() {
  Rng rng(25);
  KmsGrant m;
  m.request_id = 901;
  m.status = 0;
  m.key_id = 0xFEEDF00DCAFEULL;
  m.bits = rng.next_bits(256);
  return m;
}
template <> KmsKeyWithIdReply representative() {
  Rng rng(26);
  KmsKeyWithIdReply m;
  m.request_id = 902;
  m.ok = true;
  m.key_id = 0xFEEDF00DCAFEULL;
  m.bits = rng.next_bits(256);
  return m;
}
template <> KmsStatusReply representative() {
  return KmsStatusReply{10000, 9876, 17, 9800};
}
template <> KmsReject representative() { return KmsReject{903, 2}; }

template <typename Packet>
void size_row() {
  const Bytes framed = to_frame(representative<Packet>());
  qkd::bench::row("  0x%02X %-18s %10zu", static_cast<unsigned>(Packet::kType),
                  packet_type_name(Packet::kType), framed.size());
}

void print_tables() {
  qkd::bench::heading("E20", "wire framing codec and socket transport");

  qkd::bench::row("frame header: %zu bytes (magic 'QK', version %u, type, "
                  "u32 payload length); relay tag adds %u bits",
                  kHeaderBytes, static_cast<unsigned>(kWireVersion),
                  static_cast<unsigned>(relay_frame_overhead_bits() -
                                        8 * kHeaderBytes));
  qkd::bench::row("");
  qkd::bench::row("encoded size of one representative packet per type");
  qkd::bench::row("  %-23s %10s", "type", "bytes");
  size_row<QframeFeed>();
  size_row<SiftAnnounce>();
  size_row<SiftDecision>();
  size_row<SampleReveal>();
  size_row<ParityRequest>();
  size_row<ParityResponse>();
  size_row<EcSummary>();
  size_row<VerifyHash>();
  size_row<PaParamsPacket>();
  size_row<AbortPacket>();
  size_row<KeyDigest>();
  size_row<KmsRegister>();
  size_row<KmsRegisterReply>();
  size_row<KmsGetKey>();
  size_row<KmsGetKeyWithId>();
  size_row<KmsStatus>();
  size_row<KmsGrant>();
  size_row<KmsKeyWithIdReply>();
  size_row<KmsStatusReply>();
  size_row<KmsReject>();
  size_row<KmsBye>();
}

// ---- Codec throughput -----------------------------------------------------

/// Encode+strict-decode round trip for one packet; bytes processed is the
/// frame size, so items/s is frames and bytes/s is codec throughput.
template <typename Packet>
void bm_codec_round_trip(benchmark::State& state) {
  const Packet packet = representative<Packet>();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Bytes framed = to_frame(packet);
    bytes += framed.size();
    auto decoded = decode_packet_bytes(framed);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}

/// The ETSI flavor of the same round trip.
template <typename Message>
void bm_etsi_round_trip(benchmark::State& state) {
  const Message message = representative<Message>();
  std::size_t bytes = 0;
  for (auto _ : state) {
    const Bytes framed = to_frame(message);
    bytes += framed.size();
    const auto frame = decode_frame(framed);
    auto decoded = decode_etsi(frame.value);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}

BENCHMARK(bm_codec_round_trip<ParityRequest>)->Name("bm_codec_parity_request");
BENCHMARK(bm_codec_round_trip<SiftAnnounce>)->Name("bm_codec_sift_announce");
BENCHMARK(bm_codec_round_trip<PaParamsPacket>)->Name("bm_codec_pa_params");
BENCHMARK(bm_codec_round_trip<QframeFeed>)
    ->Name("bm_codec_qframe_feed")
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(bm_etsi_round_trip<KmsGetKey>)->Name("bm_codec_kms_get_key");
BENCHMARK(bm_etsi_round_trip<KmsGrant>)->Name("bm_codec_kms_grant");

// ---- Transport round trips ------------------------------------------------

/// One request frame out, one echoed frame back over the in-memory
/// channel: the tier-1 transport's floor for a control-packet exchange.
void bm_channel_round_trip(benchmark::State& state) {
  net::PublicChannel channel;
  net::ChannelTransport alice(channel, net::ChannelTransport::Side::kA);
  net::ChannelTransport bob(channel, net::ChannelTransport::Side::kB);
  const Bytes framed = to_frame(representative<ParityRequest>());
  std::size_t bytes = 0;
  for (auto _ : state) {
    alice.send_frame(framed);
    const auto request = bob.recv_frame();
    bob.send_frame(*request);
    const auto reply = alice.recv_frame();
    benchmark::DoNotOptimize(reply);
    bytes += 2 * framed.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(bm_channel_round_trip);

/// The same exchange over a real localhost TCP socket, echo thread on the
/// far side: per-frame latency including the kernel's loopback path.
/// range(0) is the payload size, from control packet to bulk frame.
void bm_socket_round_trip(benchmark::State& state) {
  TcpListener listener(0);
  std::unique_ptr<TcpTransport> client;
  std::thread connector([&client, port = listener.port()] {
    client = tcp_connect(port);
  });
  auto server = listener.accept_transport();
  connector.join();
  if (client == nullptr || server == nullptr) {
    state.SkipWithError("localhost socket unavailable");
    return;
  }
  std::thread echo([&server] {
    while (auto frame = server->recv_frame()) server->send_frame(*frame);
  });

  const Bytes framed = encode_frame(
      PacketType::kQframeFeed,
      Bytes(static_cast<std::size_t>(state.range(0)), 0x5A));
  std::size_t bytes = 0;
  for (auto _ : state) {
    client->send_frame(framed);
    const auto reply = client->recv_frame();
    benchmark::DoNotOptimize(reply);
    bytes += 2 * framed.size();
  }
  client.reset();  // closes the socket; the echo thread's recv fails out
  echo.join();
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(bm_socket_round_trip)
    ->Arg(24)
    ->Arg(4 << 10)
    ->Arg(384 << 10)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
