// E21: the observability layer's own cost.
// E22: the health engine's cost on top of it.
//
// The instrumentation lives permanently inside the grant and pipeline hot
// paths, which is only tenable if its quiescent cost is noise. The E21
// headline table runs the same epoch-mode KMS fleet day three ways — no
// tracer attached, tracer attached but disabled, tracer enabled and
// recording — and reports the wall-clock overhead of each against the
// uninstrumented run (the disabled column is the one E21 pins: < 2%).
// E22 layers the AlertEngine over the same fleet: metrics bound but no
// engine vs the built-in rule pack evaluating at the one-second
// attach_alerts default, and pins the enabled-engine overhead < 2% as
// well — alerting must be cheap enough to leave on. The microbenchmarks price the primitives:
// sharded counter/histogram writes, the disabled-span branch, a recorded
// span, the Chrome JSON export per span, and one engine evaluation swept
// by rule count (the --series row).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "src/common/worker_pool.hpp"
#include "src/kms/kms.hpp"
#include "src/obs/export.hpp"
#include "src/obs/health/alert.hpp"
#include "src/obs/health/rules.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/sharded_scheduler.hpp"

namespace {

using namespace qkd;
using namespace qkd::kms;
using namespace qkd::sim;
using network::MeshSimulation;
using network::NodeId;
using network::NodeKind;
using network::Topology;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Relay hub with `pairs` disjoint endpoint pairs (same hot optics as
/// E19: the measurement is scheduling cost, not photons).
Topology hot_fan(std::size_t pairs) {
  Topology topo;
  topo.add_node("hub", NodeKind::kTrustedRelay);
  qkd::optics::LinkParams optics;
  optics.fiber_km = 1.0;
  optics.pulse_rate_hz = 5e9;
  for (std::size_t p = 0; p < 2 * pairs; ++p) {
    const NodeId node =
        topo.add_node("e" + std::to_string(p), NodeKind::kEndpoint);
    topo.add_link(0, node, optics);
  }
  return topo;
}

enum class TraceMode { kAbsent, kDisabled, kEnabled };

struct TracedRun {
  std::uint64_t grants = 0;
  double wall_s = 0.0;
  std::size_t spans = 0;
  std::size_t export_bytes = 0;
  double export_s = 0.0;
};

/// One epoch-mode fleet run (the E19 workload at reduced scale) with the
/// observability layer in the given mode. Identical scheduling in all
/// three modes — only the instrumentation differs.
TracedRun run_traced_fleet(TraceMode mode, std::size_t pairs,
                           double sim_seconds) {
  MeshSimulation mesh(hot_fan(pairs), 19);
  mesh.step(30.0);

  SimClock clock;
  EventScheduler scheduler(clock);
  auto pool = std::make_shared<qkd::common::WorkerPool>(1);
  ShardedScheduler sharded(scheduler, 1, pool);
  KeyManagementService kms(mesh, sharded);

  obs::Tracer tracer(kms.shard_count());
  if (mode != TraceMode::kAbsent) {
    tracer.set_sim_time_source([&clock] { return clock.now(); });
    tracer.set_enabled(mode == TraceMode::kEnabled);
    kms.set_tracer(&tracer);
    mesh.set_tracer(&tracer);
  }

  std::vector<std::uint64_t> granted(3 * pairs, 0);
  const std::size_t bits[kQosClassCount] = {64, 96, 128};
  for (std::size_t p = 0; p < pairs; ++p) {
    const auto src = static_cast<NodeId>(1 + 2 * p);
    const auto dst = static_cast<NodeId>(2 + 2 * p);
    for (unsigned qos = 0; qos < kQosClassCount; ++qos) {
      const ClientId id = kms.register_client(
          {"c" + std::to_string(p) + "-" + std::to_string(qos), src, dst,
           static_cast<QosClass>(qos)});
      const std::size_t slot = 3 * p + qos;
      const std::size_t request_bits = bits[qos];
      kms.stream_for_pair(src, dst).every(
          (slot + 1) * (kMillisecond / 4), 10 * kMillisecond,
          [&kms, &granted, id, slot, request_bits](SimTime) {
            kms.get_key(id, request_bits,
                        [&granted, slot](const Grant& grant) {
                          if (grant.status == GrantStatus::kGranted)
                            ++granted[slot];
                        });
          });
    }
  }

  const auto start = std::chrono::steady_clock::now();
  sharded.run_until(seconds_to_sim(sim_seconds));
  TracedRun result;
  result.wall_s = seconds_since(start);
  for (std::uint64_t count : granted) result.grants += count;
  if (mode == TraceMode::kEnabled) {
    result.spans = tracer.span_count();
    const auto export_start = std::chrono::steady_clock::now();
    result.export_bytes = obs::chrome_trace_json(tracer).size();
    result.export_s = seconds_since(export_start);
  }
  return result;
}

/// One epoch-mode fleet run (same scale as E21) with metrics bound to a
/// registry and, when `engine_on`, the built-in rule pack evaluating once
/// per sim second on the scheduler (the attach_alerts default) — the
/// always-on alerting posture E22 prices. Both modes pay for the bound registry; the delta is the
/// engine itself (snapshot + condition evaluation + history upkeep).
struct AlertedRun {
  std::uint64_t grants = 0;
  double wall_s = 0.0;
  std::uint64_t evaluations = 0;
  std::uint64_t conditions = 0;
};

AlertedRun run_alerted_fleet(bool engine_on, std::size_t pairs,
                             double sim_seconds) {
  MeshSimulation mesh(hot_fan(pairs), 22);
  mesh.step(30.0);

  SimClock clock;
  EventScheduler scheduler(clock);
  auto pool = std::make_shared<qkd::common::WorkerPool>(1);
  ShardedScheduler sharded(scheduler, 1, pool);
  KeyManagementService kms(mesh, sharded);

  obs::MetricsRegistry registry(kms.shard_count());
  mesh.bind_metrics(registry, "mesh");
  kms.bind_metrics(registry, "kms");
  obs::health::AlertEngine alerts(registry);
  if (engine_on) {
    namespace rules = obs::health::rules;
    alerts.add_rule(rules::qber_spike("mesh_link0_qber_percent", "0"));
    alerts.add_rule(rules::pool_drought("mesh_link0_pool_bits", "1->2"));
    alerts.add_rule(rules::grant_slo_burn("kms_interactive_granted_within_slo",
                                          "kms_interactive_granted",
                                          "interactive"));
    alerts.add_rule(rules::shed_surge("kms_bulk_shed", "bulk"));
    alerts.add_rule(rules::retransmission_storm("kms_realtime_requests"));
    alerts.add_rule(rules::distillation_stalled("kms_transports"));
    scheduler.every(kSecond, kSecond,
                    [&alerts](SimTime t) { alerts.evaluate(t); });
  }

  std::vector<std::uint64_t> granted(3 * pairs, 0);
  const std::size_t bits[kQosClassCount] = {64, 96, 128};
  for (std::size_t p = 0; p < pairs; ++p) {
    const auto src = static_cast<NodeId>(1 + 2 * p);
    const auto dst = static_cast<NodeId>(2 + 2 * p);
    for (unsigned qos = 0; qos < kQosClassCount; ++qos) {
      const ClientId id = kms.register_client(
          {"c" + std::to_string(p) + "-" + std::to_string(qos), src, dst,
           static_cast<QosClass>(qos)});
      const std::size_t slot = 3 * p + qos;
      const std::size_t request_bits = bits[qos];
      kms.stream_for_pair(src, dst).every(
          (slot + 1) * (kMillisecond / 4), 10 * kMillisecond,
          [&kms, &granted, id, slot, request_bits](SimTime) {
            kms.get_key(id, request_bits,
                        [&granted, slot](const Grant& grant) {
                          if (grant.status == GrantStatus::kGranted)
                            ++granted[slot];
                        });
          });
    }
  }

  const auto start = std::chrono::steady_clock::now();
  sharded.run_until(seconds_to_sim(sim_seconds));
  AlertedRun result;
  result.wall_s = seconds_since(start);
  for (std::uint64_t count : granted) result.grants += count;
  result.evaluations = alerts.stats().evaluations;
  result.conditions = alerts.stats().conditions_evaluated;
  return result;
}

void print_tables() {
  qkd::bench::heading("E21", "observability overhead on the grant path");

  // Interleaved repetitions, min wall per mode: the minimum is the run
  // least disturbed by the host, which is the honest basis for an
  // overhead-percent claim on a shared machine.
  constexpr int kReps = 7;
  constexpr std::size_t kPairs = 8;
  constexpr double kSimSeconds = 3.0;
  double wall[3] = {1e9, 1e9, 1e9};
  TracedRun enabled_run;
  std::uint64_t grants = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    for (int mode = 0; mode < 3; ++mode) {
      const TracedRun run = run_traced_fleet(static_cast<TraceMode>(mode),
                                             kPairs, kSimSeconds);
      wall[mode] = std::min(wall[mode], run.wall_s);
      grants = run.grants;
      if (static_cast<TraceMode>(mode) == TraceMode::kEnabled)
        enabled_run = run;
    }
  }

  qkd::bench::row("epoch-mode fleet: %zu pairs, %zu clients, %.0f simulated "
                  "seconds, %llu grants per run, best of %d",
                  kPairs, 3 * kPairs, kSimSeconds,
                  static_cast<unsigned long long>(grants), kReps);
  qkd::bench::row("");
  qkd::bench::row("%-22s %10s %10s", "tracer", "wall ms", "overhead");
  qkd::bench::row("%-22s %10.2f %10s", "absent (baseline)", 1e3 * wall[0],
                  "--");
  qkd::bench::row("%-22s %10.2f %+9.2f%%", "attached, disabled",
                  1e3 * wall[1], 100.0 * (wall[1] - wall[0]) / wall[0]);
  qkd::bench::row("%-22s %10.2f %+9.2f%%", "attached, enabled",
                  1e3 * wall[2], 100.0 * (wall[2] - wall[0]) / wall[0]);
  qkd::bench::row("");
  qkd::bench::row("  disabled budget: < 2%% (the E21 pin; see DESIGN.md)");
  qkd::bench::row("  enabled run recorded %zu spans; Chrome JSON export "
                  "%zu KiB in %.1f ms",
                  enabled_run.spans, enabled_run.export_bytes / 1024,
                  1e3 * enabled_run.export_s);

  qkd::bench::heading("E22", "health engine overhead on the same fleet");

  double alert_wall[2] = {1e9, 1e9};
  AlertedRun engine_run;
  for (int rep = 0; rep < kReps; ++rep) {
    for (int on = 0; on < 2; ++on) {
      const AlertedRun run = run_alerted_fleet(on == 1, kPairs, kSimSeconds);
      alert_wall[on] = std::min(alert_wall[on], run.wall_s);
      if (on == 1) engine_run = run;
    }
  }

  qkd::bench::row("same fleet, registry bound in both modes; enabled adds "
                  "the six-rule pack at the 1 s attach_alerts default "
                  "interval");
  qkd::bench::row("");
  qkd::bench::row("%-22s %10s %10s", "alert engine", "wall ms", "overhead");
  qkd::bench::row("%-22s %10.2f %10s", "off (baseline)", 1e3 * alert_wall[0],
                  "--");
  qkd::bench::row("%-22s %10.2f %+9.2f%%", "on, 6 rules / 1s",
                  1e3 * alert_wall[1],
                  100.0 * (alert_wall[1] - alert_wall[0]) / alert_wall[0]);
  qkd::bench::row("");
  qkd::bench::row("  enabled budget: < 2%% (the E22 pin; see DESIGN.md)");
  qkd::bench::row("  enabled run: %llu evaluations, %llu conditions checked",
                  static_cast<unsigned long long>(engine_run.evaluations),
                  static_cast<unsigned long long>(engine_run.conditions));
}

// ---- Primitive costs -------------------------------------------------------

void bm_obs_counter_add(benchmark::State& state) {
  obs::MetricsRegistry registry(4);
  obs::Counter& counter = registry.counter("bench_hot");
  for (auto _ : state) {
    counter.add(1, 2);
    benchmark::DoNotOptimize(&counter);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_obs_counter_add);

void bm_obs_histogram_record(benchmark::State& state) {
  obs::MetricsRegistry registry(4);
  obs::Histogram& histogram = registry.histogram("bench_latency");
  std::uint64_t value = 1;
  for (auto _ : state) {
    histogram.record(value, 1);
    value = value * 2862933555777941757ULL + 3037000493ULL;  // cheap LCG
    benchmark::DoNotOptimize(&histogram);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_obs_histogram_record);

void bm_obs_span_null_tracer(benchmark::State& state) {
  // The cost paid by every instrumented layer that was never given a
  // tracer: one null check.
  for (auto _ : state) {
    obs::ScopedSpan span(nullptr, "kms.admit");
    benchmark::DoNotOptimize(span.recording());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_obs_span_null_tracer);

void bm_obs_span_disabled_tracer(benchmark::State& state) {
  // Attached but off: one relaxed load. This is the branch the < 2%
  // budget rides on.
  obs::Tracer tracer(4);
  for (auto _ : state) {
    obs::ScopedSpan span(&tracer, "kms.admit");
    benchmark::DoNotOptimize(span.recording());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_obs_span_disabled_tracer);

void bm_obs_span_recorded(benchmark::State& state) {
  // A full recorded span with one attribute — the enabled-path unit cost.
  obs::Tracer tracer(4);
  tracer.set_enabled(true);
  std::size_t recorded = 0;
  for (auto _ : state) {
    {
      obs::ScopedSpan span(&tracer, "kms.admit", {}, 1);
      span.attr("qos", "realtime");
    }
    if (++recorded == 1 << 16) {  // bound the buffer, off the timed path
      state.PauseTiming();
      tracer.clear();
      recorded = 0;
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(bm_obs_span_recorded);

void bm_obs_chrome_export(benchmark::State& state) {
  // Export cost per span (items/s = spans serialized per second).
  obs::Tracer tracer(1);
  tracer.set_enabled(true);
  for (int i = 0; i < 4096; ++i) {
    obs::ScopedSpan span(&tracer, "kms.grant_round");
    span.attr("bits", "128");
  }
  const std::vector<obs::Span> spans = tracer.spans();
  for (auto _ : state) {
    const std::string json = obs::chrome_trace_json(spans);
    benchmark::DoNotOptimize(json.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(spans.size()));
}
BENCHMARK(bm_obs_chrome_export)->Unit(benchmark::kMillisecond);

void bm_obs_registry_snapshot(benchmark::State& state) {
  // The monitoring-thread read: range(0) instruments, sharded 4 ways.
  obs::MetricsRegistry registry(4);
  const auto instruments = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < instruments; ++i)
    registry.counter("c" + std::to_string(i)).add(i);
  for (auto _ : state) {
    const auto samples = registry.snapshot();
    benchmark::DoNotOptimize(samples.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(instruments));
}
BENCHMARK(bm_obs_registry_snapshot)->Arg(64)->Unit(benchmark::kMicrosecond);

void bm_obs_alert_evaluate_sweep(benchmark::State& state) {
  // One engine evaluation as a function of rule count (items/s = rules
  // evaluated per second): half thresholds, half rate-of-change so the
  // sweep pays for history upkeep too. 64 instruments backing the rules,
  // matching the E21 snapshot benchmark's registry size.
  obs::MetricsRegistry registry(4);
  const auto rule_count = static_cast<std::size_t>(state.range(0));
  std::vector<obs::Gauge*> gauges;
  for (std::size_t i = 0; i < 64; ++i)
    gauges.push_back(&registry.gauge("g" + std::to_string(i)));
  obs::health::AlertEngine engine(registry);
  for (std::size_t i = 0; i < rule_count; ++i) {
    obs::health::AlertRule rule;
    rule.name = "r" + std::to_string(i);
    const std::string metric = "g" + std::to_string(i % 64);
    if (i % 2 == 0)
      rule.condition =
          obs::health::Threshold{metric, obs::health::Comparison::kGreater,
                                 1e9};
    else
      rule.condition = obs::health::RateOfChange{
          metric, 10 * kSecond, obs::health::Comparison::kGreater, 1e9};
    engine.add_rule(std::move(rule));
  }
  SimTime now = 0;
  std::int64_t tick = 0;
  for (auto _ : state) {
    gauges[static_cast<std::size_t>(tick) % 64]->set(tick);
    now += kSecond;
    engine.evaluate(now);
    ++tick;
    benchmark::DoNotOptimize(engine.last_evaluated());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(rule_count));
}
BENCHMARK(bm_obs_alert_evaluate_sweep)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
