// E8 (Sec. 6): Eve's attacks against the running pipeline.
//
// Intercept-resend: induced QBER rises linearly at 25% per unit intercepted
// fraction; past the alarm the batches die — the detectability guarantee.
// PNS/beamsplitting: transparent (no QBER), leakage scaling per policy —
// weak-coherent worst case charges transmitted*P[N>=2] (zero key at this
// operating point, the pre-decoy verdict), the practical accounting charges
// received*P[N>=2|N>=1] and measurably undercharges an ideal PNS Eve.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/qkd/engine.hpp"

namespace {

using namespace qkd::proto;
using namespace qkd::optics;

void print_intercept_table() {
  qkd::bench::heading("E8a", "Sec. 6: intercept-resend sweep");
  qkd::bench::row("%12s %10s %10s %12s %14s", "intercepted", "QBER%",
                  "accepted", "key bits", "eve knows (GT)");
  for (double fraction : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 1.0}) {
    QkdLinkConfig config;
    config.frame_slots = 1 << 20;
    QkdLinkSession session(config, 31);
    InterceptResendAttack eve(fraction);
    std::size_t accepted = 0, key_bits = 0, eve_known = 0;
    double qber = 0.0;
    const int batches = 3;
    for (int i = 0; i < batches; ++i) {
      const BatchResult batch = session.run_batch(&eve);
      accepted += batch.accepted;
      key_bits += batch.distilled_bits;
      eve_known += batch.eve_known_sifted;
      qber += batch.qber_actual / batches;
    }
    qkd::bench::row("%12.2f %10.2f %7zu/%zu %12zu %14zu", fraction,
                    100.0 * qber, accepted, static_cast<std::size_t>(batches),
                    key_bits, eve_known);
  }
  qkd::bench::row("(shape: QBER ~ 6%% + 25%%*fraction; keys stop flowing "
                  "well before full interception)");
}

void print_pns_table() {
  qkd::bench::heading("E8b",
                      "Sec. 6: transparent attacks and the multi-photon policy");
  struct Case {
    const char* label;
    MultiPhotonPolicy policy;
  };
  for (const Case c : {Case{"worst-case (transmitted x P[N>=2])",
                            MultiPhotonPolicy::kTransmittedWorstCase},
                       Case{"practical (received x P[N>=2|N>=1])",
                            MultiPhotonPolicy::kReceivedConditional}}) {
    QkdLinkConfig config;
    config.frame_slots = 1 << 20;
    config.multi_photon_policy = c.policy;
    QkdLinkSession session(config, 33);
    PhotonNumberSplittingAttack pns;
    std::size_t key_bits = 0, eve_known = 0, sifted = 0;
    for (int i = 0; i < 3; ++i) {
      const BatchResult batch = session.run_batch(&pns);
      key_bits += batch.distilled_bits;
      eve_known += batch.eve_known_sifted;
      sifted += batch.sifted_bits;
    }
    qkd::bench::row("  %-40s key=%6zu bits, Eve actually held %zu of %zu "
                    "sifted bits",
                    c.label, key_bits, eve_known, sifted);
  }
  qkd::bench::row("(the worst-case policy yields zero key at mu=0.1 over a "
                  "lossy link — exactly why the paper plans entangled links; "
                  "the practical policy delivered key but an ideal PNS Eve "
                  "held more sifted bits than it charged)");
}

void print_entangled_table() {
  qkd::bench::heading("E8c", "Sec. 6: weak-coherent vs. entangled accounting");
  EntropyInputs in;
  in.sifted_bits = 1500;
  in.error_bits = 90;
  in.transmitted_pulses = 1 << 20;
  in.disclosed_bits = 650;
  in.mean_photon_number = 0.1;
  in.defense = DefenseFunction::kBennett;
  in.multi_photon_policy = MultiPhotonPolicy::kTransmittedWorstCase;
  in.link_kind = LinkKind::kWeakCoherent;
  const auto weak = estimate_entropy(in);
  in.link_kind = LinkKind::kEntangled;
  const auto entangled = estimate_entropy(in);
  qkd::bench::row("  multi-photon charge: weak-coherent %.0f bits, "
                  "entangled %.1f bits (same mu, same traffic)",
                  weak.multi_photon.t, entangled.multi_photon.t);
  qkd::bench::row("  distillable: weak-coherent %.0f, entangled %.0f",
                  weak.distillable_bits, entangled.distillable_bits);
}

void bm_intercept_resend_frame(benchmark::State& state) {
  LinkParams params;
  WeakCoherentLink link(params, 3);
  InterceptResendAttack eve(1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(link.run_frame(1 << 16, &eve));
  }
  state.SetItemsProcessed((1 << 16) * state.iterations());
}
BENCHMARK(bm_intercept_resend_frame);

}  // namespace

int main(int argc, char** argv) {
  print_intercept_table();
  print_pns_table();
  print_entangled_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
