// E6 (Appendix): the defense functions — Bennett's estimate vs. Slutsky's
// defense frontier — and the resultant entropy
//   H = b - d - r - t_defense - t_multiphoton - c*sqrt(s_def^2 + s_multi^2).
//
// "Neither appears to be completely accurate — Bennett's estimate does not
// take into account all the information Eve can get from indirect attacks
// ... while Slutsky's estimate may be asymptotically correct, it is overly
// conservative for finite-length blocks." The sweep makes both halves of
// that sentence quantitative.
#include <benchmark/benchmark.h>

#include "bench/bench_util.hpp"
#include "src/qkd/entropy.hpp"

namespace {

using namespace qkd::proto;

void print_table() {
  qkd::bench::heading("E6", "Appendix: Bennett vs. Slutsky defense functions");

  const std::size_t b = 10000;
  qkd::bench::row("per-10k-sifted-bit charges (t = Eve's information bound):");
  qkd::bench::row("%7s | %12s %10s | %12s %10s", "QBER%", "bennett t",
                  "sigma", "slutsky t", "sigma");
  for (double q : {0.0, 0.01, 0.03, 0.05, 0.07, 0.09, 0.11, 0.15, 0.25,
                   0.3333}) {
    const std::size_t e = static_cast<std::size_t>(q * b);
    const DefenseEstimate bennett = bennett_defense(e);
    const DefenseEstimate slutsky = slutsky_defense(b, e);
    qkd::bench::row("%7.2f | %12.1f %10.1f | %12.1f %10.1f", 100.0 * q,
                    bennett.t, bennett.sigma, slutsky.t, slutsky.sigma);
  }
  qkd::bench::row("(Slutsky saturates at t = b when QBER reaches 1/3: past "
                  "the defense frontier Eve may know everything)");

  qkd::bench::row("");
  qkd::bench::row("resultant entropy at the paper's operating point");
  qkd::bench::row("(b=1500 sifted, n=1,048,576 pulses, mu=0.1, d=650, c=5):");
  qkd::bench::row("%7s %18s %18s", "QBER%", "H_bennett (bits)",
                  "H_slutsky (bits)");
  for (double q : {0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.08}) {
    EntropyInputs in;
    in.sifted_bits = 1500;
    in.error_bits = static_cast<std::size_t>(q * 1500);
    in.transmitted_pulses = 1 << 20;
    in.disclosed_bits = 650;
    in.mean_photon_number = 0.1;
    in.confidence = 5.0;
    in.defense = DefenseFunction::kBennett;
    const double h_bennett = estimate_entropy(in).distillable_bits;
    in.defense = DefenseFunction::kSlutsky;
    const double h_slutsky = estimate_entropy(in).distillable_bits;
    qkd::bench::row("%7.1f %18.0f %18.0f", 100.0 * q, h_bennett, h_slutsky);
  }
  qkd::bench::row("(the Slutsky column hits zero first: \"overly conservative"
                  " for finite-length blocks\", so the running system keyed "
                  "on Bennett)");

  qkd::bench::row("");
  qkd::bench::row("confidence parameter c (margin = c standard deviations):");
  qkd::bench::row("%6s %18s", "c", "H_bennett (bits)");
  for (double c : {0.0, 1.0, 3.0, 5.0, 10.0}) {
    EntropyInputs in;
    in.sifted_bits = 1500;
    in.error_bits = 90;
    in.transmitted_pulses = 1 << 20;
    in.disclosed_bits = 650;
    in.confidence = c;
    in.defense = DefenseFunction::kBennett;
    qkd::bench::row("%6.0f %18.0f", c, estimate_entropy(in).distillable_bits);
  }
  qkd::bench::row("(c = 5 means ~1e-6 chance of successful eavesdropping, "
                  "per the paper)");
}

void bm_entropy_estimate(benchmark::State& state) {
  EntropyInputs in;
  in.sifted_bits = 1500;
  in.error_bits = 90;
  in.transmitted_pulses = 1 << 20;
  in.disclosed_bits = 650;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimate_entropy(in));
  }
}
BENCHMARK(bm_entropy_estimate);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
