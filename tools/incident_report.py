#!/usr/bin/env python3
"""Per-incident timeline over an AlertEngine incident-report JSON file.

Reads the {"incidents": [...], "transitions": [...], "stats": {...}}
document src/obs/health/report.cpp writes (QKD_INCIDENT_OUT in
example_kms_day) and prints one block per incident: the lifecycle
instants (pending/firing/resolved in sim seconds), the peak observed
value, and the rule's labels. With --trace it merges a Chrome trace-event
JSON (the obs tracer's QKD_TRACE_OUT dump, sim-time microseconds) into
each block: the spans that overlap the incident's firing window, grouped
by name with counts and total sim time — "what the stack was doing while
the alarm was up".

Stdlib only (json/argparse); no third-party imports.

Usage:
  tools/incident_report.py incidents.json
  tools/incident_report.py incidents.json --trace trace.json
  tools/incident_report.py incidents.json --json    # machine-readable
"""

import argparse
import json
import sys


def load_json(path, what):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except FileNotFoundError:
        print(f"incident_report: {what} file not found: {path}",
              file=sys.stderr)
        sys.exit(2)
    except (OSError, json.JSONDecodeError) as error:
        print(f"incident_report: cannot read {what} {path}: {error}",
              file=sys.stderr)
        sys.exit(2)


def load_spans(path):
    document = load_json(path, "trace")
    if isinstance(document, dict):
        events = document.get("traceEvents", [])
    elif isinstance(document, list):
        events = document
    else:
        print(f"incident_report: {path} is not a Chrome trace document",
              file=sys.stderr)
        sys.exit(2)
    return [e for e in events if isinstance(e, dict) and e.get("ph") == "X"]


def spans_in_window(spans, start_s, end_s):
    """Spans overlapping [start_s, end_s], grouped by name."""
    groups = {}
    for span in spans:
        t0 = float(span.get("ts", 0.0)) / 1e6  # sim-time us -> s
        t1 = t0 + float(span.get("dur", 0.0)) / 1e6
        if t1 < start_s or t0 > end_s:
            continue
        row = groups.setdefault(span.get("name", "?"),
                                {"count": 0, "total_us": 0.0})
        row["count"] += 1
        row["total_us"] += float(span.get("dur", 0.0))
    return [
        {"name": name, "count": row["count"], "total_us": row["total_us"]}
        for name, row in sorted(
            groups.items(), key=lambda kv: -kv[1]["total_us"]
        )
    ]


def build_report(document, spans):
    incidents = []
    for incident in document.get("incidents", []):
        entry = dict(incident)
        if spans is not None:
            end = incident.get("resolved_s")
            if end is None:
                end = incident.get("firing_s", 0.0) + incident.get(
                    "duration_s", 0.0
                )
            entry["spans"] = spans_in_window(
                spans, incident.get("firing_s", 0.0), end
            )
        incidents.append(entry)
    return {
        "incidents": incidents,
        "transitions": document.get("transitions", []),
        "stats": document.get("stats", {}),
    }


def fmt_time(value):
    return "still firing" if value is None else f"t={value:.1f}s"


def render(report):
    lines = []
    incidents = report["incidents"]
    stats = report["stats"]
    lines.append(
        f"{len(incidents)} incident(s), "
        f"{stats.get('transitions', 0)} transition(s) across "
        f"{stats.get('rules', 0)} rule(s), "
        f"{stats.get('evaluations', 0)} evaluation(s)"
    )
    for i, incident in enumerate(incidents):
        lines.append("")
        lines.append(f"incident {i + 1}: {incident.get('rule', '?')}")
        lines.append(f"  {incident.get('summary', '')}")
        labels = incident.get("labels", {})
        if labels:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(labels.items()))
            lines.append(f"  labels: {rendered}")
        pending = incident.get("pending_s")
        if pending is not None:
            lines.append(f"  pending:  t={pending:.1f}s")
        lines.append(f"  firing:   t={incident.get('firing_s', 0.0):.1f}s")
        lines.append(f"  resolved: {fmt_time(incident.get('resolved_s'))}")
        lines.append(
            f"  duration: {incident.get('duration_s', 0.0):.1f}s, "
            f"peak value {incident.get('peak_value', 0.0):.3g}"
        )
        spans = incident.get("spans")
        if spans is not None:
            if spans:
                lines.append("  spans while firing:")
                for span in spans[:10]:
                    lines.append(
                        f"    {span['name']:<28}{span['count']:>8}x"
                        f"{span['total_us']:>14.1f}us"
                    )
                if len(spans) > 10:
                    lines.append(f"    ... {len(spans) - 10} more")
            else:
                lines.append("  spans while firing: none recorded")
    # The raw lifecycle log closes the story: every state change in order.
    transitions = report["transitions"]
    if transitions:
        lines.append("")
        lines.append("transitions:")
        for t in transitions:
            lines.append(
                f"  t={t.get('t_s', 0.0):>8.1f}s  {t.get('rule', '?'):<32}"
                f"{t.get('from', '?'):>9} -> {t.get('to', '?')}"
            )
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Per-incident timeline over AlertEngine incident JSON"
    )
    parser.add_argument("incidents", help="path to the incident-report JSON")
    parser.add_argument(
        "--trace",
        help="Chrome trace JSON to merge (spans overlapping each incident)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)

    document = load_json(args.incidents, "incident report")
    if not isinstance(document, dict):
        print(
            f"incident_report: {args.incidents} is not an incident document",
            file=sys.stderr,
        )
        return 2
    spans = load_spans(args.trace) if args.trace else None
    report = build_report(document, spans)
    try:
        if args.json:
            print(json.dumps(report, indent=2))
        else:
            print(render(report))
    except BrokenPipeError:  # e.g. piped into head
        sys.stderr.close()
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
