#!/usr/bin/env python3
"""Compare Google Benchmark JSON snapshots and flag perf regressions.

Typical uses:

    # CI trajectory check: fresh run vs the in-repo snapshots
    tools/compare_bench.py bench/snapshots bench-results

    # Gate mode: non-zero exit when any benchmark regressed >10%
    tools/compare_bench.py bench/snapshots bench-results --strict

    # Single pair of files
    tools/compare_bench.py old/BENCH_bench_kms.json new/BENCH_bench_kms.json

    # Scaling curves: rows of Arg-swept benchmarks from one snapshot set
    tools/compare_bench.py bench-results --series bm_kms_sharded_sweep \
        --series bm_obs_alert_evaluate_sweep

Inputs are files or directories of ``BENCH_*.json`` as written by
``--benchmark_out_format=json`` (the CI bench-examples job and the
"refreshing the snapshots" recipe in DESIGN.md use identical flags).
Benchmarks are matched by (file stem, benchmark name); comparison is on
``real_time`` normalised to nanoseconds via each entry's ``time_unit``.

Only matched names are compared: added or removed benchmarks are listed
informationally and never fail the run (the corpus is expected to grow).
Pure table-printing entries (aggregates with no timing) are skipped.

stdlib-only on purpose — runs anywhere python3 exists, no installs.
"""

import argparse
import json
import sys
from pathlib import Path

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def snapshot_files(path: Path):
    """The BENCH_*.json files behind `path` (a dir or a single file), with
    a clean one-line error — not a traceback — when it does not exist."""
    if not path.exists():
        raise SystemExit(f"error: snapshot path does not exist: {path}")
    files = sorted(path.glob("BENCH_*.json")) if path.is_dir() else [path]
    if not files:
        raise SystemExit(f"error: no BENCH_*.json under {path}")
    return files


def load_snapshots(path: Path):
    """(file stem, benchmark name) -> real_time in ns."""
    files = snapshot_files(path)
    results = {}
    for file in files:
        try:
            doc = json.loads(file.read_text())
        except json.JSONDecodeError as err:
            raise SystemExit(f"error: {file}: not valid JSON ({err})")
        stem = file.stem
        for bench in doc.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue  # compare raw repetitions only, not mean/stddev rows
            name = bench.get("name")
            real_time = bench.get("real_time")
            if name is None or real_time is None:
                continue
            unit = TIME_UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
            results[(stem, name)] = real_time * unit
    return results


def load_series(path: Path, prefix: str):
    """Rows of ``prefix/<arg>`` entries: (arg, real_time ns, items/s)."""
    files = snapshot_files(path)
    rows = []
    for file in files:
        try:
            doc = json.loads(file.read_text())
        except json.JSONDecodeError as err:
            raise SystemExit(f"error: {file}: not valid JSON ({err})")
        for bench in doc.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            name = bench.get("name", "")
            if not name.startswith(prefix + "/"):
                continue
            try:
                arg = int(name[len(prefix) + 1:].split("/")[0])
            except ValueError:
                continue
            unit = TIME_UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
            rows.append((arg, bench.get("real_time", 0.0) * unit,
                         bench.get("items_per_second")))
    return sorted(rows)


def print_series(path: Path, prefix: str) -> int:
    """The scaling curve: one row per Arg, speedup relative to the first."""
    rows = load_series(path, prefix)
    if not rows:
        print(f"error: no '{prefix}/<arg>' benchmarks under {path}",
              file=sys.stderr)
        return 1
    print(f"series {prefix} ({len(rows)} points)")
    print(f"  {'arg':>6} {'time':>12} {'items/s':>12} {'speedup':>8}")
    base_items = rows[0][2]
    base_time = rows[0][1]
    for arg, time_ns, items in rows:
        if items is not None and base_items:
            speedup = items / base_items
        else:
            speedup = base_time / time_ns if time_ns else float("nan")
        items_text = f"{items:,.0f}" if items is not None else "-"
        print(f"  {arg:>6} {time_ns / 1e6:>10.2f}ms {items_text:>12} "
              f"{speedup:>7.2f}x")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="Flag >N%% benchmark real_time regressions "
        "between two snapshot sets."
    )
    parser.add_argument("baseline", type=Path,
                        help="snapshot dir or file (the committed reference)")
    parser.add_argument("candidate", type=Path, nargs="?",
                        help="snapshot dir or file (the fresh run); "
                        "omitted in --series mode")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent (default 10)")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 if any benchmark regresses past the "
                        "threshold (default: report only)")
    parser.add_argument("--series", metavar="PREFIX", action="append",
                        help="print the scaling curve of one Arg-swept "
                        "benchmark (rows PREFIX/<arg>) from a single "
                        "snapshot set instead of comparing two; repeatable "
                        "for several curves in one invocation")
    args = parser.parse_args()

    if args.series:
        status = 0
        for i, prefix in enumerate(args.series):
            if i:
                print()
            status = max(status,
                         print_series(args.candidate or args.baseline,
                                      prefix))
        return status
    if args.candidate is None:
        parser.error("candidate is required unless --series is given")

    base = load_snapshots(args.baseline)
    cand = load_snapshots(args.candidate)

    matched = sorted(set(base) & set(cand))
    added = sorted(set(cand) - set(base))
    removed = sorted(set(base) - set(cand))

    regressions = []
    improvements = []
    for key in matched:
        delta_pct = (cand[key] - base[key]) / base[key] * 100.0
        if delta_pct > args.threshold:
            regressions.append((key, delta_pct))
        elif delta_pct < -args.threshold:
            improvements.append((key, delta_pct))

    def describe(key):
        stem, name = key
        return f"{stem}:{name}"

    print(f"compared {len(matched)} benchmarks "
          f"(threshold {args.threshold:.0f}%)")
    for key, delta in sorted(regressions, key=lambda r: -r[1]):
        print(f"  REGRESSED  {describe(key)}  +{delta:.1f}%  "
              f"({base[key]:.0f}ns -> {cand[key]:.0f}ns)")
    for key, delta in sorted(improvements, key=lambda r: r[1]):
        print(f"  improved   {describe(key)}  {delta:.1f}%")
    if added:
        print(f"  new (not compared): {len(added)}")
        for key in added:
            print(f"    + {describe(key)}")
    if removed:
        print(f"  missing from candidate: {len(removed)}")
        for key in removed:
            print(f"    - {describe(key)}")
    if not regressions:
        print("  no regressions past threshold")

    if regressions and args.strict:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
