#!/usr/bin/env python3
"""Per-span latency report over a Chrome trace-event JSON file.

Reads the {"traceEvents": [...]} file the stack's obs exporter writes
(sim-time microseconds in ts/dur, span metadata in args) and prints one
row per span name: count, p50/p90/p99 and max of the sim-time duration,
plus the same percentiles of wall_ns when present — the quick answer to
"where did grant latency go" without loading Perfetto.

Stdlib only (json/argparse/math); no third-party imports.

Usage:
  tools/trace_report.py trace.json
  tools/trace_report.py trace.json --by-tid      # split rows per cell/lane
  tools/trace_report.py trace.json --json        # machine-readable output
"""

import argparse
import json
import sys


def percentile(sorted_values, q):
    """Nearest-rank percentile over an ascending list (0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(1, round(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


def load_events(path):
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if isinstance(document, dict):
        events = document.get("traceEvents", [])
    elif isinstance(document, list):  # the bare-array trace flavor
        events = document
    else:
        raise ValueError("not a Chrome trace-event document")
    return [e for e in events if isinstance(e, dict) and e.get("ph") == "X"]


def aggregate(events, by_tid=False):
    groups = {}
    for event in events:
        name = event.get("name", "?")
        key = (name, event.get("tid", 0)) if by_tid else (name,)
        row = groups.setdefault(
            key, {"name": name, "durs_us": [], "walls_ns": []}
        )
        if by_tid:
            row["tid"] = event.get("tid", 0)
        row["durs_us"].append(float(event.get("dur", 0.0)))
        wall = event.get("args", {}).get("wall_ns")
        if isinstance(wall, (int, float)):
            row["walls_ns"].append(float(wall))
    report = []
    for key in sorted(groups):
        row = groups[key]
        durs = sorted(row["durs_us"])
        walls = sorted(row["walls_ns"])
        entry = {
            "name": row["name"],
            "count": len(durs),
            "p50_us": percentile(durs, 0.50),
            "p90_us": percentile(durs, 0.90),
            "p99_us": percentile(durs, 0.99),
            "max_us": durs[-1] if durs else 0.0,
        }
        if by_tid:
            entry["tid"] = row["tid"]
        if walls:
            entry["wall_p50_ns"] = percentile(walls, 0.50)
            entry["wall_p99_ns"] = percentile(walls, 0.99)
        report.append(entry)
    return report


def render(report, by_tid=False):
    lines = []
    header = f"{'span':<28}"
    if by_tid:
        header += f"{'tid':>5}"
    header += f"{'count':>8}{'p50us':>12}{'p90us':>12}{'p99us':>12}{'maxus':>12}"
    lines.append(header)
    lines.append("-" * len(header))
    for entry in report:
        line = f"{entry['name']:<28}"
        if by_tid:
            line += f"{entry.get('tid', 0):>5}"
        line += (
            f"{entry['count']:>8}"
            f"{entry['p50_us']:>12.1f}"
            f"{entry['p90_us']:>12.1f}"
            f"{entry['p99_us']:>12.1f}"
            f"{entry['max_us']:>12.1f}"
        )
        lines.append(line)
    return "\n".join(lines)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Per-span latency percentiles over Chrome trace JSON"
    )
    parser.add_argument("trace", help="path to the trace JSON file")
    parser.add_argument(
        "--by-tid",
        action="store_true",
        help="split rows per tid (one track per shard/lane cell)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as error:
        print(f"trace_report: {error}", file=sys.stderr)
        return 2

    report = aggregate(events, by_tid=args.by_tid)
    try:
        if args.json:
            print(json.dumps({"spans": report}, indent=2))
        else:
            print(f"{len(events)} complete events in {args.trace}")
            print(render(report, by_tid=args.by_tid))
    except BrokenPipeError:  # e.g. piped into head
        sys.stderr.close()
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
